// Cyclonetracking demonstrates the paper's §5.4 pipeline: a CNN is
// trained on labelled patches from simulated years (standing in for
// the "pre-trained on historical data" Keras model), then both the
// ML localizer and the deterministic multi-criteria tracker are run on
// a held-out simulated year, their detections are geo-referenced and
// compared against the seeded ground-truth storms, and the resulting
// skill (POD, FAR, mean center error) is reported side by side.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ml"
	"repro/internal/tctrack"
	"repro/internal/viz"
)

const (
	patch     = 12
	days      = 30
	threshold = 0.5
)

func stormCfg(seed int64) esm.Config {
	return esm.Config{
		Grid: grid.Grid{NLat: 48, NLon: 96}, StartYear: 2040, Years: 1, DaysPerYear: days,
		Seed: seed,
		Events: &esm.EventConfig{
			CyclonesPerYear: 6,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	}
}

func main() {
	log.SetFlags(0)

	// 1. Train the localizer on storms from several simulated years.
	fmt.Println("training CNN localizer on 4 simulated years of seeded storms...")
	samples, err := ml.SamplesFromSimulations(stormCfg(0), []int64{11, 12, 13, 14}, patch, patch)
	if err != nil {
		log.Fatal(err)
	}
	pos := 0
	for _, s := range samples {
		if s.HasTC {
			pos++
		}
	}
	loc, err := ml.NewLocalizer(patch, patch, 7)
	if err != nil {
		log.Fatal(err)
	}
	losses, err := loc.Train(samples, ml.TrainConfig{Epochs: 5, BatchSize: 32, LR: 2e-3, Seed: 5, Balance: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d patches (%d positive), loss %.4f -> %.4f\n",
		len(samples), pos, losses[0], losses[len(losses)-1])

	// Persist and reload the model, as the workflow would ("pre-trained
	// ML model(s)").
	dir, err := os.MkdirTemp("", "tcmodel-")
	if err != nil {
		log.Fatal(err)
	}
	modelPath := filepath.Join(dir, "tc_localizer.gob")
	if err := loc.Net.Save(modelPath); err != nil {
		log.Fatal(err)
	}
	net, err := ml.Load(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	loc = &ml.Localizer{Net: net, PatchH: patch, PatchW: patch}
	fmt.Printf("  model saved to %s (%d parameters)\n\n", modelPath, net.ParamCount())

	// 2. Evaluate both detectors on a held-out year.
	fmt.Println("evaluating on a held-out simulated year (seed 99)...")
	model := esm.NewModel(stormCfg(99))
	gt := model.GroundTruth()

	var cnnInstants, detInstants []tctrack.Instant
	tracker := tctrack.NewTracker()
	var lastField *grid.Field
	var markers []viz.Marker
	for {
		day := model.StepDay()
		if day == nil {
			break
		}
		for s := 0; s < esm.StepsPerDay; s++ {
			var truth []esm.TrackPoint
			for _, c := range gt.Cyclones {
				if p, ok := c.Active(day.DayOfYear, s); ok && p.PressureDrop > 1500 {
					truth = append(truth, p)
				}
			}
			// deterministic detector runs at every step
			dd, err := tctrack.DetectStep(day, s, tctrack.DefaultCriteria())
			if err != nil {
				log.Fatal(err)
			}
			tracker.Advance(dd)
			if len(truth) > 0 || len(dd) > 0 {
				detInstants = append(detInstants, tctrack.Instant{Truth: truth, Dets: dd})
			}
			// CNN runs at its trained cadence (every second step)
			if s%2 == 0 {
				cd, err := loc.DetectStep(day, s, threshold)
				if err != nil {
					log.Fatal(err)
				}
				var asDet []tctrack.Detection
				for _, d := range cd {
					asDet = append(asDet, tctrack.Detection{Lat: d.Lat, Lon: d.Lon})
					markers = append(markers, viz.Marker{Lat: d.Lat, Lon: d.Lon, Glyph: 'X'})
				}
				if len(truth) > 0 || len(asDet) > 0 {
					cnnInstants = append(cnnInstants, tctrack.Instant{Truth: truth, Dets: asDet})
				}
			}
		}
		psl, err := day.Field(0, "PSL")
		if err != nil {
			log.Fatal(err)
		}
		lastField = psl
	}
	tracks := tracker.Finish()

	cnnSkill := tctrack.Evaluate(cnnInstants, 2000)
	detSkill := tctrack.Evaluate(detInstants, 600)
	fmt.Printf("  seeded storms:            %d\n", len(gt.Cyclones))
	fmt.Printf("  CNN localizer:            %v\n", cnnSkill)
	fmt.Printf("  deterministic tracker:    %v\n", detSkill)
	fmt.Printf("  stitched tracks:          %d\n", len(tracks))
	for _, tr := range tracks {
		first, last := tr.Points[0], tr.Points[len(tr.Points)-1]
		fmt.Printf("    track %d: %d steps, (%.1f,%.1f) -> (%.1f,%.1f), max depression %.0f Pa\n",
			tr.ID, tr.Duration(), first.Lat, first.Lon, last.Lat, last.Lon, maxDep(tr))
	}

	// 3. Geo-reference the CNN detections onto a global map.
	fmt.Println("\nCNN detections (X) over the final day's sea-level pressure:")
	fmt.Println(viz.ASCIIMapWithMarkers(lastField, 72, markers))
	if math.IsNaN(cnnSkill.POD) {
		log.Fatal("no evaluation instants")
	}
}

func maxDep(t *tctrack.Track) float64 {
	m := 0.0
	for _, p := range t.Points {
		if p.DepressionPa > m {
			m = p.DepressionPa
		}
	}
	return m
}
