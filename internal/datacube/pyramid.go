package datacube

import (
	"math"
	"time"
)

// This file maintains each cube's resolution pyramid: 2x/4x/8x
// row-downsampled tiers in the spirit of hierarchical multi-resolution
// climate stores (Panta et al.). A tier holds, per coarse row, the
// mean-preserving midpoint series over the covered full-resolution rows
// plus a scalar spread bound, so a coarse pass can evaluate one row per
// block and know how far the true per-row results can stray
// (tolerance.go). Tiers are derived data: they are built lazily on
// first tolerant access (never taxing exact pipelines), fan out over
// the same I/O servers as fragment work, and live in one backing
// allocation per tier.

// tier is one pyramid level of a cube.
type tier struct {
	factor int       // full rows per coarse row (2^level)
	rows   int       // ceil(cube rows / factor)
	mean   []float32 // rows × implicitLen midpoint series, row-major
	spread []float32 // rows; max |value - mean| over the covered block
}

// bytes reports the tier's payload size.
func (t *tier) bytes() int64 { return int64(len(t.mean)+len(t.spread)) * 4 }

// defaultPyramidLevels is the tier count when Config.PyramidLevels is
// zero: 2x, 4x and 8x row reductions.
const defaultPyramidLevels = 3

// PyramidFactor returns the row span of the coarsest pyramid tier the
// config implies (1 when the pyramid is disabled). The cluster
// coordinator uses it to decide whether shard row offsets align with
// tier block boundaries before forwarding a tolerance.
func (cfg Config) PyramidFactor() int {
	l := cfg.PyramidLevels
	if l == 0 {
		l = defaultPyramidLevels
	}
	if l < 0 {
		return 1
	}
	return 1 << l
}

// ensureTiers builds the cube's pyramid on first use and returns it.
// Concurrent callers share one build (sync.Once); a nil result means
// the pyramid is disabled or could not be built, and tolerant execution
// falls back to the exact path.
func (c *Cube) ensureTiers() []tier {
	c.tierOnce.Do(func() {
		c.tiers = c.engine.buildTiers(c)
		c.tiersOK.Store(true)
	})
	return c.tiers
}

// builtTiers returns the pyramid only if it has already been built,
// without triggering a build (used by byte accounting).
func (c *Cube) builtTiers() []tier {
	if c.tiersOK.Load() {
		return c.tiers
	}
	return nil
}

// TierLevels reports how many pyramid tiers have been built so far.
func (c *Cube) TierLevels() int { return len(c.builtTiers()) }

// Bytes reports the cube's resident payload: fragment data plus any
// built pyramid tiers.
func (c *Cube) Bytes() int64 {
	var n int64
	for _, fr := range c.frags {
		n += int64(len(fr.data)) * 4
	}
	for _, t := range c.builtTiers() {
		n += t.bytes()
	}
	return n
}

// buildTiers computes every pyramid level from the full-resolution
// rows. Each level is computed directly from level 0 (not from the
// previous tier) so means are exact and spreads are tight; blocks are
// aligned to cube-local row 0, which keeps shard-local tiers
// bit-identical to the matching slice of a single engine's tiers when
// shard row offsets are multiples of the top factor.
func (e *Engine) buildTiers(c *Cube) []tier {
	levels := e.cfg.PyramidLevels
	if levels <= 0 || c.rows < 2 || c.implicit.Size == 0 {
		return nil
	}
	n := c.implicit.Size
	tiers := make([]tier, levels)
	for l := 1; l <= levels; l++ {
		f := 1 << l
		tr := (c.rows + f - 1) / f
		backing := make([]float32, tr*n+tr) // one allocation: mean, then spread
		tiers[l-1] = tier{factor: f, rows: tr, mean: backing[:tr*n], spread: backing[tr*n:]}
	}
	top := 1 << levels
	topRows := tiers[levels-1].rows
	ntasks := 2 * e.cfg.Servers
	if ntasks > topRows {
		ntasks = topRows
	}
	t0 := time.Now()
	err := e.runTasks("tier_build", ntasks, func(task int) error {
		b0 := topRows * task / ntasks
		b1 := topRows * (task + 1) / ntasks
		var block [][]float32 // row slices of the current coarse block
		cells := 0
		for li := range tiers {
			t := &tiers[li]
			// top-level blocks decompose exactly into this level's blocks
			c0 := b0 * top / t.factor
			c1 := b1 * top / t.factor
			if c1 > t.rows {
				c1 = t.rows
			}
			for crow := c0; crow < c1; crow++ {
				r0 := crow * t.factor
				r1 := r0 + t.factor
				if r1 > c.rows {
					r1 = c.rows
				}
				block = block[:0]
				for r := r0; r < r1; r++ {
					block = append(block, c.rowSlice(r))
				}
				mrow := t.mean[crow*n : (crow+1)*n]
				cnt := float64(len(block))
				for tt := 0; tt < n; tt++ {
					var s float64
					for _, row := range block {
						s += float64(row[tt])
					}
					mrow[tt] = float32(s / cnt)
				}
				var sp float64
				for _, row := range block {
					for tt := 0; tt < n; tt++ {
						if d := math.Abs(float64(row[tt]) - float64(mrow[tt])); d > sp {
							sp = d
						}
					}
				}
				// round the spread upward so float32 storage never
				// understates the true deviation
				sp32 := float32(sp)
				if float64(sp32) < sp {
					sp32 = math.Nextafter32(sp32, float32(math.Inf(1)))
				}
				t.spread[crow] = sp32
				cells += (r1 - r0) * n
			}
		}
		e.addCells(int64(cells))
		return nil
	})
	if err != nil {
		// only possible when the engine is closing; callers fall back to
		// the exact path
		return nil
	}
	var tb int64
	for i := range tiers {
		tb += tiers[i].bytes()
	}
	e.met.tierBuilds.Inc()
	e.met.tierBuildSeconds.Observe(time.Since(t0).Seconds())
	e.met.tierBytes.Add(float64(tb))
	return tiers
}

// runTasks schedules n independent work items over the I/O servers and
// waits for completion — the same lifecycle discipline as fragment
// fan-outs (closed check, inflight registration, joined errors), for
// work that is not shaped like one task per fragment.
func (e *Engine) runTasks(op string, n int, fn func(task int) error) error {
	if n <= 0 {
		return nil
	}
	tasks := make([]func() error, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() error { return fn(i) }
	}
	return e.scatterTasks(op, tasks)
}
