package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/ml"
	"repro/internal/ncdf"
	"repro/internal/texchange"
)

// TestExchangeRunEquivalence runs the same configuration through the
// file handoff and the exchange handoff and demands identical results:
// same detections, same index statistics, byte-identical exported
// index files — the exchange changes where bytes travel, never what
// they are.
func TestExchangeRunEquivalence(t *testing.T) {
	mkLoc := func() *ml.Localizer {
		loc, err := ml.NewLocalizer(12, 12, 7)
		if err != nil {
			t.Fatal(err)
		}
		return loc
	}

	cfgFile := testConfig(t, 1)
	cfgFile.Localizer = mkLoc()
	cfgFile.TCThreshold = 0.05
	resFile, err := Run(cfgFile)
	if err != nil {
		t.Fatal(err)
	}

	x := texchange.New(texchange.Config{})
	defer x.Close()
	cfgEx := testConfig(t, 1)
	cfgEx.Localizer = mkLoc()
	cfgEx.TCThreshold = 0.05
	cfgEx.Exchange = x
	resEx, err := Run(cfgEx)
	if err != nil {
		t.Fatal(err)
	}

	// The exchange really carried the data: every day's variables were
	// published, and the datacube import needed no storage reads beyond
	// the baselines.
	st := x.Stats()
	if want := uint64(cfgEx.DaysPerYear * len(exchangeVars)); st.Publishes != want {
		t.Fatalf("publishes = %d, want %d", st.Publishes, want)
	}
	if resEx.CubeStats.FileReads >= resFile.CubeStats.FileReads {
		t.Fatalf("exchange run did %d file reads, file run %d — handoff still file-bound",
			resEx.CubeStats.FileReads, resFile.CubeStats.FileReads)
	}

	// Identical analytical results.
	yf, ye := resFile.Years[0], resEx.Years[0]
	if len(yf.CNNDetections) == 0 {
		t.Fatal("file run produced no detections; equivalence check vacuous")
	}
	if len(yf.CNNDetections) != len(ye.CNNDetections) {
		t.Fatalf("detections: %d vs %d", len(yf.CNNDetections), len(ye.CNNDetections))
	}
	for i := range yf.CNNDetections {
		if yf.CNNDetections[i] != ye.CNNDetections[i] {
			t.Fatalf("detection %d: %+v vs %+v", i, yf.CNNDetections[i], ye.CNNDetections[i])
		}
	}
	if yf.TrackerTracks != ye.TrackerTracks || yf.TrackerAgreementKm != ye.TrackerAgreementKm {
		t.Fatalf("tracker: (%d, %v) vs (%d, %v)", yf.TrackerTracks, yf.TrackerAgreementKm, ye.TrackerTracks, ye.TrackerAgreementKm)
	}
	if yf.HWNumberMean != ye.HWNumberMean || yf.CWNumberMean != ye.CWNumberMean {
		t.Fatalf("index means: (%v, %v) vs (%v, %v)", yf.HWNumberMean, yf.CWNumberMean, ye.HWNumberMean, ye.CWNumberMean)
	}

	// Identical exported index files — every value, dimension and
	// provenance attribute. (Raw bytes can differ only in the cube_id
	// attr, whose numbering follows scheduler timing, not data.)
	for _, name := range []string{
		"heat_wave_duration", "heat_wave_number", "heat_wave_frequency",
		"cold_wave_duration", "cold_wave_number", "cold_wave_frequency",
	} {
		fn := fmt.Sprintf("%s_%d.nc", name, 2040)
		a, err := ncdf.ReadFile(filepath.Join(cfgFile.OutputDir, fn))
		if err != nil {
			t.Fatal(err)
		}
		b, err := ncdf.ReadFile(filepath.Join(cfgEx.OutputDir, fn))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Dims) != fmt.Sprint(b.Dims) {
			t.Fatalf("%s: dims %v vs %v", fn, a.Dims, b.Dims)
		}
		if a.Attrs["provenance"] != b.Attrs["provenance"] || a.Attrs["year"] != b.Attrs["year"] {
			t.Fatalf("%s: attrs differ: %v vs %v", fn, a.Attrs, b.Attrs)
		}
		va, err := a.Var(name)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Var(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(va.Data) != len(vb.Data) {
			t.Fatalf("%s: %d vs %d values", fn, len(va.Data), len(vb.Data))
		}
		for i := range va.Data {
			if va.Data[i] != vb.Data[i] {
				t.Fatalf("%s[%d]: %v vs %v", fn, i, va.Data[i], vb.Data[i])
			}
		}
	}
}

// TestExchangeRunOnlineTrainer runs the full online loop: exchange
// handoff plus a trainer fed by the tracker's pseudo-labels, hot-
// swapping improved weights into the live localizer mid-run.
func TestExchangeRunOnlineTrainer(t *testing.T) {
	loc, err := ml.NewLocalizer(12, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ml.NewOnlineTrainer(ml.OnlineConfig{Target: loc, SwapEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := texchange.New(texchange.Config{})
	defer x.Close()

	cfg := testConfig(t, 2)
	cfg.Localizer = loc
	cfg.TCThreshold = 0.05
	cfg.Exchange = x
	cfg.OnlineTrainer = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.Years) != 2 {
		t.Fatalf("years = %d", len(res.Years))
	}
	st := tr.Stats()
	if st.Fed == 0 || st.Samples == 0 || st.Steps == 0 {
		t.Fatalf("trainer never trained: %+v", st)
	}
	if st.Swaps == 0 || loc.WeightsGeneration() == 0 {
		t.Fatalf("trainer never swapped weights: %+v gen=%d", st, loc.WeightsGeneration())
	}
}

// TestExchangeRunAttachOnlyIgnoresExchange: with no in-process
// producer nothing publishes, so consumers must not stall on the
// exchange — the run completes on the file path.
func TestExchangeRunAttachOnlyIgnoresExchange(t *testing.T) {
	// Produce a year of files up front with a plain run.
	seed := testConfig(t, 1)
	seed.ModelDir = filepath.Join(seed.OutputDir, "model_output")
	if _, err := Run(seed); err != nil {
		t.Fatal(err)
	}

	x := texchange.New(texchange.Config{})
	defer x.Close()
	cfg := testConfig(t, 1)
	cfg.ModelDir = seed.ModelDir
	cfg.Exchange = x
	cfg.AttachOnly = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Years) != 1 {
		t.Fatalf("years = %d", len(res.Years))
	}
	if st := x.Stats(); st.Publishes != 0 || st.Waits != 0 {
		t.Fatalf("attach-only run touched the exchange: %+v", st)
	}
}
