// Package hpcwaas implements the HPC-Workflows-as-a-Service layer of
// the eFlows4HPC stack (paper §4.1, Figure 1): a workflow registry fed
// by developers, a Yorc-like deployer that walks the TOSCA topology to
// install software (via the Container Image Creation service) and move
// data (via the Data Logistics Service), and a REST Execution API that
// lets final users "run the deployed workflow as a simple REST
// invocation".
package hpcwaas

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dls"
	"repro/internal/imagebuilder"
	"repro/internal/tosca"
)

// AppFunc is the executable body of a registered workflow — the role
// the PyCOMPSs application plays on the HPC system. It receives the
// user's input parameters and returns result key/values.
type AppFunc func(params map[string]string) (map[string]string, error)

// Entry is one registry record: the workflow description (TOSCA
// topology) plus its executable.
type Entry struct {
	// Name identifies the workflow; Version distinguishes revisions.
	Name        string
	Version     string
	Description string
	// Topology is the deployment description consumed by the deployer.
	Topology *tosca.Topology
	// App is the orchestrated application.
	App AppFunc
}

// Registry is the eFlows4HPC workflow registry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Register validates and stores an entry; re-registering a name
// replaces it (a new version).
func (r *Registry) Register(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("hpcwaas: workflow needs a name")
	}
	if e.App == nil {
		return fmt.Errorf("hpcwaas: workflow %q has no application", e.Name)
	}
	if e.Topology == nil {
		return fmt.Errorf("hpcwaas: workflow %q has no topology", e.Name)
	}
	if err := e.Topology.Validate(); err != nil {
		return fmt.Errorf("hpcwaas: workflow %q: %w", e.Name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := e
	r.entries[e.Name] = &cp
	return nil
}

// Lookup fetches an entry.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns entry names, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeploymentStatus tracks the lifecycle of one deployment.
type DeploymentStatus string

// Deployment states.
const (
	StatusDeployed   DeploymentStatus = "DEPLOYED"
	StatusUndeployed DeploymentStatus = "UNDEPLOYED"
	StatusFailed     DeploymentStatus = "FAILED"
)

// Deployment is the record of one topology instantiation on a target.
type Deployment struct {
	ID       string
	Workflow string
	Target   string
	Status   DeploymentStatus
	// Log records the lifecycle operations in execution order.
	Log []string
	// Images lists the container images built for the deployment.
	Images []*imagebuilder.Image
}

// Deployer walks TOSCA topologies and materializes them, playing the
// Yorc role.
type Deployer struct {
	// Builder is the Container Image Creation service.
	Builder *imagebuilder.Builder
	// DLS is the Data Logistics Service for data nodes.
	DLS *dls.Service
	// Platform is the compilation target of the destination machine.
	Platform imagebuilder.Platform
	// Pipelines maps pipeline names (referenced by data-node properties)
	// to DLS pipelines executed at deployment time.
	Pipelines map[string]dls.Pipeline

	mu     sync.Mutex
	nextID int
	deps   map[string]*Deployment
}

// NewDeployer wires a deployer; nil services get fresh defaults.
func NewDeployer(b *imagebuilder.Builder, d *dls.Service, platform imagebuilder.Platform) *Deployer {
	if b == nil {
		b = imagebuilder.NewBuilder(nil)
	}
	if d == nil {
		d = dls.NewService(nil)
	}
	if platform.Arch == "" {
		platform = imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"}
	}
	return &Deployer{
		Builder:   b,
		DLS:       d,
		Platform:  platform,
		Pipelines: make(map[string]dls.Pipeline),
		deps:      make(map[string]*Deployment),
	}
}

// Deploy instantiates the entry's topology on the named target,
// executing node lifecycles in dependency order. It returns a snapshot
// of the deployment record.
func (d *Deployer) Deploy(e *Entry, target string) (Deployment, error) {
	order, err := e.Topology.DeployOrder()
	if err != nil {
		return Deployment{}, err
	}
	d.mu.Lock()
	d.nextID++
	dep := &Deployment{
		ID:       fmt.Sprintf("dep-%d", d.nextID),
		Workflow: e.Name,
		Target:   target,
		Status:   StatusDeployed,
	}
	d.deps[dep.ID] = dep
	d.mu.Unlock()

	fail := func(err error) (Deployment, error) {
		d.mu.Lock()
		dep.Status = StatusFailed
		dep.Log = append(dep.Log, "ERROR: "+err.Error())
		d.mu.Unlock()
		return d.snapshot(dep), err
	}
	logf := func(format string, args ...any) {
		d.mu.Lock()
		dep.Log = append(dep.Log, fmt.Sprintf(format, args...))
		d.mu.Unlock()
	}

	for _, name := range order {
		n := e.Topology.Node(name)
		switch n.Type {
		case tosca.TypeCompute:
			logf("allocate %s on %s (scheduler=%s)", n.Name, target, n.Properties["scheduler"])
		case tosca.TypeSoftware:
			logf("install %s: package %s", n.Name, n.Properties["package"])
		case tosca.TypeContainer:
			pkgs := strings.Split(n.Properties["packages"], ",")
			for i := range pkgs {
				pkgs[i] = strings.TrimSpace(pkgs[i])
			}
			img, err := d.Builder.Build(imagebuilder.Request{
				Name:     n.Properties["image"],
				Packages: pkgs,
				Platform: d.Platform,
			})
			if err != nil {
				return fail(fmt.Errorf("hpcwaas: build image for %s: %w", n.Name, err))
			}
			d.mu.Lock()
			dep.Images = append(dep.Images, img)
			d.mu.Unlock()
			logf("image %s → %s (cached=%v)", n.Name, img.Digest[:19], img.Cached)
		case tosca.TypeData:
			pname := n.Properties["pipeline"]
			if pname == "" {
				logf("data %s: no pipeline, skipping", n.Name)
				break
			}
			p, ok := d.Pipelines[pname]
			if !ok {
				return fail(fmt.Errorf("hpcwaas: data node %s references unknown pipeline %q", n.Name, pname))
			}
			if err := d.DLS.Run(p); err != nil {
				return fail(fmt.Errorf("hpcwaas: pipeline %s: %w", pname, err))
			}
			logf("data %s: pipeline %s complete", n.Name, pname)
		case tosca.TypeWorkflow:
			logf("publish %s to execution API", n.Name)
		default:
			logf("node %s (%s): generic create", n.Name, n.Type)
		}
	}
	return d.snapshot(dep), nil
}

// Undeploy tears a deployment down in reverse order.
func (d *Deployer) Undeploy(id string, top *tosca.Topology) error {
	d.mu.Lock()
	dep, ok := d.deps[id]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("hpcwaas: unknown deployment %q", id)
	}
	order, err := top.UndeployOrder()
	if err != nil {
		return err
	}
	d.mu.Lock()
	for _, n := range order {
		dep.Log = append(dep.Log, "remove "+n)
	}
	dep.Status = StatusUndeployed
	d.mu.Unlock()
	return nil
}

// Get fetches a snapshot of a deployment record.
func (d *Deployer) Get(id string) (Deployment, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dep, ok := d.deps[id]
	if !ok {
		return Deployment{}, false
	}
	out := *dep
	out.Log = append([]string(nil), dep.Log...)
	out.Images = append([]*imagebuilder.Image(nil), dep.Images...)
	return out, true
}

// snapshot returns a race-free copy of a live deployment. Caller must
// not hold d.mu.
func (d *Deployer) snapshot(dep *Deployment) Deployment {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := *dep
	out.Log = append([]string(nil), dep.Log...)
	out.Images = append([]*imagebuilder.Image(nil), dep.Images...)
	return out
}

// ActiveFor reports whether the workflow has a live deployment.
func (d *Deployer) ActiveFor(workflow string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, dep := range d.deps {
		if dep.Workflow == workflow && dep.Status == StatusDeployed {
			return true
		}
	}
	return false
}
