// Package execstore is the shared execution store behind the replicated
// HPCWaaS control plane. Where internal/execq is one process's bounded
// worker queue, execstore is the state that N stateless API replicas
// share: tasks are submitted once, claimed by replicas under
// epoch-fenced leases, and completed exactly once — a replica that
// crashes or partitions simply stops renewing, its leases expire, its
// tasks are reclaimed for other replicas, and any completion it later
// delivers under the stale lease is fenced out by the epoch token
// (the fencing-token pattern; Merlin's producer/consumer task server is
// the scale exemplar, Peterson et al. 2019).
//
// Three control-plane policies live here because they must be global to
// be meaningful:
//
//   - Weighted-deficit fair-share dispatch across tenants (fairshare.go)
//     replaces FIFO-within-priority: one heavy tenant can no longer
//     starve thousands of small ones, and the starvation bound is an
//     explicit function of the configured weights (StarvationBound).
//   - Cost-based admission (cost.go): every task kind's estimated cost
//     comes from the obs histogram of its past runs; Submit projects
//     the backlog's total cost onto the live replica capacity and sheds
//     with a typed reason + Retry-After once the estimated wait passes
//     the configured bound — not just a queue-depth cutoff.
//   - Epoch-fenced leases with a chaos injection site (execstore.lease)
//     so lease expiry and clock skew are first-class test inputs.
//
// The store is in-process (replicas share the *Store) and optionally
// file-backed: a JSON-lines journal with size-triggered compaction
// recovers pending work after a store crash, in the execq journal
// idiom (torn/corrupt lines are skipped and counted, never fatal).
package execstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// State is the lifecycle of one task in the store.
type State string

// Task states. PENDING tasks wait for a replica to lease them; LEASED
// tasks are held by a replica under an epoch fence; DONE, FAILED and
// CANCELED are terminal and retained up to the retention bound.
const (
	StatePending  State = "PENDING"
	StateLeased   State = "LEASED"
	StateDone     State = "DONE"
	StateFailed   State = "FAILED"
	StateCanceled State = "CANCELED"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Task is one unit of work submitted to the store.
type Task struct {
	// ID names the task; empty means the store assigns "task-N".
	ID string
	// Tenant is the principal the task is accounted (and fair-shared)
	// against.
	Tenant string
	// Kind is the workflow type; it keys the cost model.
	Kind string
	// Priority orders dispatch within the tenant's own queue (higher
	// first). Across tenants, fair share decides — priority is a local
	// preference, not a global starvation lever.
	Priority int
	// Payload is the opaque task description.
	Payload json.RawMessage
	// Retries is how many failed attempts are re-queued before the task
	// is FAILED (lease expiries reclaim without burning the budget).
	Retries int
}

// TaskView is a race-free snapshot of a task's state.
type TaskView struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	Kind      string          `json:"kind,omitempty"`
	Priority  int             `json:"priority,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	State     State           `json:"state"`
	Attempt   int             `json:"attempt"`
	Epoch     uint64          `json:"epoch,omitempty"`
	Holder    string          `json:"holder,omitempty"`
	Output    json.RawMessage `json:"output,omitempty"`
	Err       string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started,omitzero"`
	Finished  time.Time       `json:"finished,omitzero"`
}

// Lease is a replica's fenced claim on one task. The Epoch is the
// fencing token: Complete and Fail are rejected with ErrFenced unless
// it matches the task's current epoch, so a holder whose lease expired
// (crash, partition, skewed clock) cannot corrupt a reassigned task.
type Lease struct {
	TaskID string
	Epoch  uint64
	Task   TaskView
}

// epochRestartGap is added to the highest journaled epoch on recovery;
// it upper-bounds how many unjournaled epoch bumps (acquires, reclaims)
// could plausibly have happened after the last journaled terminal state.
const epochRestartGap = 1 << 16

// Store errors.
var (
	ErrClosed      = errors.New("execstore: store closed")
	ErrUnknownTask = errors.New("execstore: unknown task")
	ErrDuplicateID = errors.New("execstore: duplicate task id")
	// ErrFenced rejects a completion or failure delivered under a stale
	// lease epoch: the task was reclaimed and possibly re-leased since.
	ErrFenced = errors.New("execstore: stale lease fenced out")
	// ErrTerminal rejects cancelling an already-finished task.
	ErrTerminal = errors.New("execstore: task already terminal")
)

// ShedReason is the taxonomy of admission rejections (DESIGN.md §13).
type ShedReason string

// Shed reasons. Tenant-caused reasons map to HTTP 429, capacity-caused
// ones to 503 (see ShedError.TenantCaused).
const (
	// ShedDepth: the global pending bound is reached.
	ShedDepth ShedReason = "depth"
	// ShedBacklogCost: the cost-estimated wait for new work exceeds the
	// configured MaxEstimatedWait.
	ShedBacklogCost ShedReason = "backlog-cost"
	// ShedTenantQuota: the tenant's live-task quota is exhausted.
	ShedTenantQuota ShedReason = "tenant-quota"
	// ShedTenantRate: the tenant's token-bucket rate is exhausted.
	ShedTenantRate ShedReason = "tenant-rate"
	// ShedDraining: the store is draining for shutdown.
	ShedDraining ShedReason = "draining"
)

// ShedError is a typed admission rejection: the reason says what was
// exhausted, RetryAfter when a retry is worth attempting, and
// EstimatedWait (for backlog-cost sheds) what completion wait the cost
// model projected.
type ShedError struct {
	Reason        ShedReason
	RetryAfter    time.Duration
	EstimatedWait time.Duration
}

func (e *ShedError) Error() string {
	if e.Reason == ShedBacklogCost {
		return fmt.Sprintf("execstore: shed (%s): estimated wait %s (retry after %s)",
			e.Reason, e.EstimatedWait.Round(time.Millisecond), e.RetryAfter.Round(time.Millisecond))
	}
	return fmt.Sprintf("execstore: shed (%s) (retry after %s)", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// TenantCaused reports whether the rejection is attributable to the
// submitting tenant (quota/rate: fix your own usage, HTTP 429) rather
// than to global capacity (depth/backlog/draining: the service is the
// bottleneck, HTTP 503).
func (e *ShedError) TenantCaused() bool {
	return e.Reason == ShedTenantQuota || e.Reason == ShedTenantRate
}

// AsShed extracts a ShedError from an admission error chain.
func AsShed(err error) (*ShedError, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// Config parameterizes a Store. Zero values get defaults from Open.
type Config struct {
	// MaxPending bounds tasks waiting for a lease (default 4096).
	MaxPending int
	// PerTenantLimit bounds one tenant's live (pending+leased) tasks;
	// 0 disables the quota.
	PerTenantLimit int
	// RatePerSec/Burst token-bucket rate limit per tenant (0 disables).
	// The bucket is store-global, so the limit holds across all API
	// replicas — per-replica buckets would multiply the budget by N.
	RatePerSec float64
	Burst      int
	// MaxEstimatedWait enables cost-based shedding: Submit rejects with
	// ShedBacklogCost once the backlog's estimated completion wait
	// (cost model × live replica capacity) would exceed it. 0 disables.
	MaxEstimatedWait time.Duration
	// DefaultCostSeconds seeds the cost model before any run of a task
	// kind has been observed (default 50ms).
	DefaultCostSeconds float64
	// Quantum is the deficit round-robin quantum in normalized cost
	// units (default 1: one mean-cost task per tenant per round).
	Quantum float64
	// LeaseTTL is how long a lease lives without renewal (default 3s).
	LeaseTTL time.Duration
	// SweepEvery is the expiry/backoff sweep cadence (default
	// LeaseTTL/4, floor 1ms).
	SweepEvery time.Duration
	// BaseBackoff/MaxBackoff delay re-dispatch of a transiently failed
	// task: min(Max, Base<<(attempt-1)) (defaults 50ms / 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Retention bounds retained terminal task records (default 4096).
	Retention int
	// JournalPath, when set, persists tasks as JSON lines; Open replays
	// it and re-queues every non-terminal task.
	JournalPath string
	// JournalMaxBytes triggers size-based journal compaction (default
	// 1<<20; negative disables).
	JournalMaxBytes int64
	// Metrics receives the store's execstore_* instruments; nil keeps
	// them private to Stats().
	Metrics *obs.Registry
	// Injector, when non-nil, is consulted at chaos.SiteLease for every
	// held lease during expiry sweeps (force-expiry = slow-clock holder,
	// latency = fast-clock holder).
	Injector chaos.Injector

	// nowFn overrides the clock in tests.
	nowFn func() time.Time
}

// task is the store's mutable record of one submission.
type task struct {
	Task
	state       State
	attempt     int
	epoch       uint64
	holder      string
	deadline    time.Time // lease expiry
	notBefore   time.Time // retry backoff gate
	cancelReq   bool
	costUnits   float64 // normalized DRR charge
	costSeconds float64 // estimated seconds, for shed accounting
	output      json.RawMessage
	errMsg      string
	seq         uint64
	hidx        int // index in the tenant heap, -1 when not pending
	submitted   time.Time
	enqueued    time.Time // last (re-)queue, for wait latency
	started     time.Time
	finished    time.Time
}

func (t *task) view() TaskView {
	return TaskView{
		ID:        t.ID,
		Tenant:    t.Tenant,
		Kind:      t.Kind,
		Priority:  t.Priority,
		Payload:   t.Payload,
		State:     t.state,
		Attempt:   t.attempt,
		Epoch:     t.epoch,
		Holder:    t.holder,
		Output:    t.output,
		Err:       t.errMsg,
		Submitted: t.submitted,
		Started:   t.started,
		Finished:  t.finished,
	}
}

// bucket is one tenant's token bucket (store-global across replicas).
type bucket struct {
	tokens float64
	last   time.Time
}

// replicaInfo tracks one registered executor replica for capacity
// estimation. A replica that stops acquiring/renewing ages out of the
// live-capacity window on its own.
type replicaInfo struct {
	slots int
	seen  time.Time
}

// Store is the shared, lease-fenced execution store. Create with Open.
type Store struct {
	cfg Config

	mu           sync.Mutex
	cond         *sync.Cond
	tasks        map[string]*task
	leasedSet    map[string]*task
	tenants      map[string]*tenantQ
	ring         []*tenantQ
	ringIdx      int
	termOrder    []string
	pending      int
	backlogSecs  float64
	epoch        uint64
	seq          uint64
	nextID       uint64
	highAutoID   uint64
	replicas     map[string]*replicaInfo
	draining     bool
	closed       bool
	journal      *journal
	compactFloor int64
	met          *smetrics
	cost         *costModel

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// Open validates cfg, replays the journal (if configured), starts the
// lease sweeper and returns a live store.
func Open(cfg Config) (*Store, error) {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.RatePerSec))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.DefaultCostSeconds <= 0 {
		cfg.DefaultCostSeconds = 0.05
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.LeaseTTL / 4
		if cfg.SweepEvery < time.Millisecond {
			cfg.SweepEvery = time.Millisecond
		}
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 4096
	}
	if cfg.JournalMaxBytes == 0 {
		cfg.JournalMaxBytes = 1 << 20
	}
	if cfg.nowFn == nil {
		cfg.nowFn = time.Now
	}
	s := &Store{
		cfg:       cfg,
		tasks:     make(map[string]*task),
		leasedSet: make(map[string]*task),
		tenants:   make(map[string]*tenantQ),
		replicas:  make(map[string]*replicaInfo),
		met:       newSMetrics(cfg.Metrics),
		cost:      newCostModel(cfg.Metrics, cfg.DefaultCostSeconds),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerGauges(cfg.Metrics)

	if cfg.JournalPath != "" {
		pending, maxEpoch, skipped, err := replayJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.met.journalSkipped.Add(float64(skipped))
		// Only terminal records carry epochs, but acquires and reclaims
		// (not journaled) kept bumping the counter before the crash: a
		// straggler may hold a lease epoch above maxEpoch. Resume with a
		// generous gap so every pre-crash epoch is provably stale.
		s.epoch = maxEpoch + epochRestartGap
		s.journal, err = resetJournal(cfg.JournalPath, pending)
		if err != nil {
			return nil, err
		}
		now := s.now()
		for _, t := range pending {
			s.mu.Lock()
			// Resume the auto-ID sequence past recovered IDs so new
			// submissions cannot collide with them.
			var n uint64
			if _, err := fmt.Sscanf(t.ID, "task-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
				s.highAutoID = n
			}
			if _, dup := s.tasks[t.ID]; !dup {
				s.admitLocked(t, now)
				s.met.recovered.Inc()
			}
			s.mu.Unlock()
		}
	}

	go s.sweeper()
	return s, nil
}

func (s *Store) now() time.Time { return s.cfg.nowFn() }

// SetWeight assigns a tenant's fair-share weight (default 1). Weights
// are clamped to [0.01, 1000] and take effect on the next dispatch
// round; they are configuration, not journaled state.
func (s *Store) SetWeight(tenant string, w float64) {
	w = math.Max(0.01, math.Min(1000, w))
	s.mu.Lock()
	s.tenantLocked(tenant).weight = w
	s.mu.Unlock()
}

// Submit admits a task or sheds it with a typed *ShedError (depth,
// backlog-cost, tenant-quota, tenant-rate, draining) carrying a
// Retry-After hint. Admission is where cost-based load shedding lives:
// the task's estimated cost (obs histograms of past runs of its Kind)
// is projected onto the live replica capacity before acceptance.
func (s *Store) Submit(t Task) (TaskView, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return TaskView{}, ErrClosed
	}
	now := s.now()
	if s.draining {
		s.met.shedFor(ShedDraining).Inc()
		s.mu.Unlock()
		return TaskView{}, &ShedError{Reason: ShedDraining, RetryAfter: time.Second}
	}
	if s.pending >= s.cfg.MaxPending {
		s.met.shedFor(ShedDepth).Inc()
		hint := s.drainHintLocked(now)
		s.mu.Unlock()
		return TaskView{}, &ShedError{Reason: ShedDepth, RetryAfter: hint}
	}
	tq := s.tenantLocked(t.Tenant)
	if s.cfg.PerTenantLimit > 0 && tq.live >= s.cfg.PerTenantLimit {
		s.met.shedFor(ShedTenantQuota).Inc()
		hint := s.drainHintLocked(now)
		s.mu.Unlock()
		return TaskView{}, &ShedError{Reason: ShedTenantQuota, RetryAfter: hint}
	}
	if s.cfg.RatePerSec > 0 {
		if wait := s.takeTokenLocked(tq, now); wait > 0 {
			s.met.shedFor(ShedTenantRate).Inc()
			s.mu.Unlock()
			return TaskView{}, &ShedError{Reason: ShedTenantRate, RetryAfter: wait}
		}
	}
	if s.cfg.MaxEstimatedWait > 0 {
		cost := s.cost.estimate(t.Kind)
		projected := s.estWaitLocked(now, s.backlogSecs+cost)
		if projected > s.cfg.MaxEstimatedWait {
			s.met.shedFor(ShedBacklogCost).Inc()
			hint := projected - s.cfg.MaxEstimatedWait
			if hint < time.Millisecond {
				hint = time.Millisecond
			}
			s.mu.Unlock()
			return TaskView{}, &ShedError{Reason: ShedBacklogCost, RetryAfter: hint, EstimatedWait: projected}
		}
	}
	if t.ID == "" {
		s.nextID++
		t.ID = fmt.Sprintf("task-%d", s.nextID)
		s.highAutoID = s.nextID
	}
	if _, dup := s.tasks[t.ID]; dup {
		s.mu.Unlock()
		return TaskView{}, fmt.Errorf("%w: %s", ErrDuplicateID, t.ID)
	}
	it := s.admitLocked(t, now)
	s.met.submitted.Inc()
	if s.journal != nil {
		s.journal.append(submitRecord(t, now))
		s.maybeCompactLocked()
	}
	view := it.view()
	s.mu.Unlock()
	return view, nil
}

// admitLocked inserts a pending task into its tenant queue.
func (s *Store) admitLocked(t Task, now time.Time) *task {
	s.seq++
	it := &task{
		Task:        t,
		state:       StatePending,
		seq:         s.seq,
		hidx:        -1,
		costUnits:   s.cost.normalized(t.Kind),
		costSeconds: s.cost.estimate(t.Kind),
		submitted:   now,
		enqueued:    now,
		notBefore:   now,
	}
	s.tasks[t.ID] = it
	tq := s.tenantLocked(t.Tenant)
	tq.live++
	s.queuePendingLocked(tq, it)
	s.pending++
	s.backlogSecs += it.costSeconds
	s.cond.Broadcast()
	return it
}

// takeTokenLocked consumes one token from the tenant's bucket or
// returns the actual next-token wait.
func (s *Store) takeTokenLocked(tq *tenantQ, now time.Time) time.Duration {
	b := &tq.bucket
	if b.last.IsZero() {
		b.tokens = float64(s.cfg.Burst)
	} else {
		b.tokens = math.Min(float64(s.cfg.Burst), b.tokens+now.Sub(b.last).Seconds()*s.cfg.RatePerSec)
	}
	b.last = now
	if b.tokens >= 1-1e-9 {
		b.tokens = math.Max(0, b.tokens-1)
		return 0
	}
	wait := time.Duration(math.Ceil((1 - b.tokens) / s.cfg.RatePerSec * float64(time.Second)))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// serviceSlotsLocked sums the worker slots of replicas seen recently
// enough to be considered live (within 2 lease TTLs).
func (s *Store) serviceSlotsLocked(now time.Time) int {
	window := 2 * s.cfg.LeaseTTL
	slots := 0
	for id, r := range s.replicas {
		if now.Sub(r.seen) <= window {
			slots += r.slots
		} else {
			delete(s.replicas, id)
		}
	}
	if slots <= 0 {
		slots = 1
	}
	return slots
}

// estWaitLocked projects a backlog of estimated cost-seconds onto the
// live replica capacity.
func (s *Store) estWaitLocked(now time.Time, backlogSeconds float64) time.Duration {
	return time.Duration(backlogSeconds / float64(s.serviceSlotsLocked(now)) * float64(time.Second))
}

// drainHintLocked estimates the time for one slot-sized unit of work to
// drain: the mean task cost over the live capacity.
func (s *Store) drainHintLocked(now time.Time) time.Duration {
	d := time.Duration(s.cost.globalMean() / float64(s.serviceSlotsLocked(now)) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// RegisterReplica announces an executor replica and its worker-slot
// count to the capacity model. Acquire and Renew refresh its liveness;
// a silent replica ages out after 2 lease TTLs.
func (s *Store) RegisterReplica(id string, slots int) {
	if slots < 1 {
		slots = 1
	}
	s.mu.Lock()
	s.replicas[id] = &replicaInfo{slots: slots, seen: s.now()}
	s.mu.Unlock()
}

// DeregisterReplica removes a replica from the capacity model (graceful
// shutdown; crashed replicas age out instead).
func (s *Store) DeregisterReplica(id string) {
	s.mu.Lock()
	delete(s.replicas, id)
	s.mu.Unlock()
}

func (s *Store) touchReplicaLocked(id string, now time.Time) {
	if r, ok := s.replicas[id]; ok {
		r.seen = now
	} else {
		s.replicas[id] = &replicaInfo{slots: 1, seen: now}
	}
}

// TryAcquire claims up to max pending tasks for the replica under fresh
// lease epochs, without blocking. Dispatch order is weighted-deficit
// fair share across tenants.
func (s *Store) TryAcquire(replica string, max int) []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	now := s.now()
	s.touchReplicaLocked(replica, now)
	s.expireLocked(now)
	return s.acquireLocked(replica, max, now)
}

// AwaitAcquire blocks until at least one task is claimable (or ctx is
// done / the store closes), then claims up to max like TryAcquire.
// Draining stores still hand out leases: replicas drain the backlog.
func (s *Store) AwaitAcquire(ctx context.Context, replica string, max int) ([]Lease, error) {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-stop:
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := s.now()
		s.touchReplicaLocked(replica, now)
		s.expireLocked(now)
		if leases := s.acquireLocked(replica, max, now); len(leases) > 0 {
			return leases, nil
		}
		s.cond.Wait()
	}
}

// acquireLocked claims up to max dispatchable tasks under new epochs.
func (s *Store) acquireLocked(replica string, max int, now time.Time) []Lease {
	var leases []Lease
	for len(leases) < max {
		t := s.nextDispatchLocked(now)
		if t == nil {
			break
		}
		s.pending--
		s.epoch++
		t.epoch = s.epoch
		t.state = StateLeased
		t.holder = replica
		t.attempt++
		t.deadline = now.Add(s.cfg.LeaseTTL)
		t.started = now
		s.leasedSet[t.ID] = t
		s.met.acquired.Inc()
		s.met.wait.Observe(now.Sub(t.enqueued).Seconds())
		leases = append(leases, Lease{TaskID: t.ID, Epoch: t.epoch, Task: t.view()})
	}
	return leases
}

// Renew extends every lease the replica still holds and reports which
// task IDs remain held and which of those have a pending cancel request
// (the replica should stop executing them; their eventual Fail
// finalizes as CANCELED).
func (s *Store) Renew(replica string) (held, canceled []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.touchReplicaLocked(replica, now)
	for id, t := range s.leasedSet {
		if t.holder != replica {
			continue
		}
		t.deadline = now.Add(s.cfg.LeaseTTL)
		held = append(held, id)
		if t.cancelReq {
			canceled = append(canceled, id)
		}
	}
	return held, canceled
}

// Complete records a task's output under the lease fence: exactly one
// completion per task can ever succeed, and it must carry the current
// epoch. Stale holders get ErrFenced and their output is discarded.
func (s *Store) Complete(l Lease, output json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[l.TaskID]
	if !ok {
		s.met.fenced.Inc()
		return fmt.Errorf("%w: %s", ErrUnknownTask, l.TaskID)
	}
	if t.state != StateLeased || t.epoch != l.Epoch {
		s.met.fenced.Inc()
		return fmt.Errorf("%w: task %s epoch %d (current %d, state %s)",
			ErrFenced, l.TaskID, l.Epoch, t.epoch, t.state)
	}
	t.output = output
	now := s.now()
	s.cost.observe(t.Kind, now.Sub(t.started).Seconds())
	s.finalizeLocked(t, StateDone, nil, now)
	return nil
}

// Fail reports a failed attempt under the lease fence. Transient
// failures with retry budget left re-queue the task (with backoff);
// permanent failures (chaos.Permanent) and exhausted budgets finalize
// FAILED; a pending cancel request finalizes CANCELED.
func (s *Store) Fail(l Lease, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[l.TaskID]
	if !ok {
		s.met.fenced.Inc()
		return fmt.Errorf("%w: %s", ErrUnknownTask, l.TaskID)
	}
	if t.state != StateLeased || t.epoch != l.Epoch {
		s.met.fenced.Inc()
		return fmt.Errorf("%w: task %s epoch %d (current %d, state %s)",
			ErrFenced, l.TaskID, l.Epoch, t.epoch, t.state)
	}
	now := s.now()
	if cause == nil {
		cause = errors.New("execstore: failed")
	}
	switch {
	case t.cancelReq || errors.Is(cause, context.Canceled):
		s.finalizeLocked(t, StateCanceled, cause, now)
	case !chaos.IsPermanent(cause) && t.attempt <= t.Retries:
		t.errMsg = cause.Error()
		s.met.retried.Inc()
		s.requeueLocked(t, now, s.backoff(t.attempt))
	default:
		s.finalizeLocked(t, StateFailed, cause, now)
	}
	return nil
}

func (s *Store) backoff(attempt int) time.Duration {
	d := float64(s.cfg.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if d > float64(s.cfg.MaxBackoff) {
		d = float64(s.cfg.MaxBackoff)
	}
	return time.Duration(d)
}

// requeueLocked returns a leased task to its tenant queue (retry or
// reclaim). The epoch advances so the previous holder is fenced.
func (s *Store) requeueLocked(t *task, now time.Time, delay time.Duration) {
	delete(s.leasedSet, t.ID)
	s.epoch++
	t.epoch = s.epoch
	t.state = StatePending
	t.holder = ""
	t.enqueued = now
	t.notBefore = now.Add(delay)
	s.seq++
	t.seq = s.seq
	s.queuePendingLocked(s.tenantLocked(t.Tenant), t)
	s.pending++
	s.cond.Broadcast()
}

// finalizeLocked moves a task to a terminal state and updates
// accounting, journal and retention.
func (s *Store) finalizeLocked(t *task, state State, cause error, now time.Time) {
	if t.state == StatePending {
		s.removePendingLocked(t)
		s.pending--
	}
	delete(s.leasedSet, t.ID)
	t.state = state
	t.holder = ""
	t.finished = now
	if cause != nil {
		t.errMsg = cause.Error()
	}
	tq := s.tenantLocked(t.Tenant)
	if tq.live > 0 {
		tq.live--
	}
	s.backlogSecs -= t.costSeconds
	if s.backlogSecs < 0 {
		s.backlogSecs = 0
	}
	switch state {
	case StateDone:
		s.met.completed.Inc()
		s.met.e2e.Observe(now.Sub(t.submitted).Seconds())
		s.met.run.Observe(now.Sub(t.started).Seconds())
	case StateFailed:
		s.met.failed.Inc()
	case StateCanceled:
		s.met.canceled.Inc()
	}
	if s.journal != nil {
		s.journal.append(stateRecord(t.ID, state, t.errMsg, t.epoch, now))
		s.maybeCompactLocked()
	}
	s.termOrder = append(s.termOrder, t.ID)
	for len(s.termOrder) > s.cfg.Retention {
		id := s.termOrder[0]
		s.termOrder = s.termOrder[1:]
		delete(s.tasks, id)
	}
	s.cond.Broadcast()
}

// expireLocked reclaims tasks whose leases have expired. The chaos
// injector is consulted per held lease: a Transient fault force-expires
// it (the holder's clock runs slow — it still believes in the lease the
// store just revoked), a Latency fault defers the check by Delay (the
// holder's clock runs fast). Reclaimed tasks re-queue immediately and
// do not burn the retry budget; their new epoch fences the old holder.
func (s *Store) expireLocked(now time.Time) {
	for _, t := range s.leasedSet {
		deadline := t.deadline
		if s.cfg.Injector != nil {
			switch f := s.cfg.Injector.Decide(chaos.SiteLease, t.holder, t.attempt); f.Kind {
			case chaos.Transient:
				deadline = now
			case chaos.Latency:
				deadline = deadline.Add(f.Delay)
			}
		}
		if now.Before(deadline) {
			continue
		}
		s.met.reclaimed.Inc()
		if t.cancelReq {
			s.finalizeLocked(t, StateCanceled, context.Canceled, now)
			continue
		}
		s.requeueLocked(t, now, 0)
	}
}

// sweeper periodically expires leases and wakes blocked acquirers whose
// backoff gates may have opened.
func (s *Store) sweeper() {
	defer close(s.sweepDone)
	tick := time.NewTicker(s.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-tick.C:
			s.mu.Lock()
			if !s.closed {
				s.expireLocked(s.now())
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}
}

// Sweep forces one expiry pass now (tests and drivers).
func (s *Store) Sweep() {
	s.mu.Lock()
	if !s.closed {
		s.expireLocked(s.now())
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Cancel cancels a task: pending finalizes CANCELED immediately; leased
// records a cancel request that the holder observes on its next Renew
// (completion wins the race if it lands first). Terminal tasks return
// ErrTerminal, unknown IDs ErrUnknownTask.
func (s *Store) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	switch t.state {
	case StatePending:
		s.finalizeLocked(t, StateCanceled, context.Canceled, s.now())
		return nil
	case StateLeased:
		t.cancelReq = true
		return nil
	default:
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, t.state)
	}
}

// Get returns a snapshot of a task (live or retained terminal).
func (s *Store) Get(id string) (TaskView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return TaskView{}, false
	}
	return t.view(), true
}

// LookupStatus distinguishes "never existed" from "evicted by the
// retention bound".
type LookupStatus int

// Lookup results.
const (
	LookupFound LookupStatus = iota
	LookupExpired
	LookupUnknown
)

// Lookup fetches a task snapshot, reporting evicted auto-assigned IDs
// ("task-N" at or below the high-water mark) distinctly from unknown
// ones.
func (s *Store) Lookup(id string) (TaskView, LookupStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[id]; ok {
		return t.view(), LookupFound
	}
	var n uint64
	if _, err := fmt.Sscanf(id, "task-%d", &n); err == nil && n >= 1 && n <= s.highAutoID {
		return TaskView{}, LookupExpired
	}
	return TaskView{}, LookupUnknown
}

// List returns retained tasks, optionally filtered by state ("" = all),
// in no particular order beyond live-before-terminal stability of the
// underlying map iteration being removed: results are sorted by
// submission sequence.
func (s *Store) List(state State) []TaskView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TaskView, 0, len(s.tasks))
	for _, t := range s.tasks {
		if state != "" && t.state != state {
			continue
		}
		out = append(out, t.view())
	}
	sortViews(out)
	return out
}

// Drain stops intake (Submit sheds with ShedDraining); replicas keep
// acquiring until the backlog is gone.
func (s *Store) Drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// WaitIdle blocks until no pending or leased tasks remain (or ctx
// expires).
func (s *Store) WaitIdle(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-stop:
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for (s.pending > 0 || len(s.leasedSet) > 0) && ctx.Err() == nil && !s.closed {
		s.cond.Wait()
	}
	return ctx.Err()
}

// Close stops the sweeper, wakes every blocked acquirer with ErrClosed
// and closes the journal. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	j := s.journal
	s.journal = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.stopSweep)
	<-s.sweepDone
	if j != nil {
		return j.close()
	}
	return nil
}

// maybeCompactLocked mirrors the execq journal policy: once the file
// outgrows the bound, rewrite it down to the live tasks; floor the next
// trigger at twice the compacted size so a full store does not
// recompact on every append.
func (s *Store) maybeCompactLocked() {
	if s.journal == nil || s.cfg.JournalMaxBytes <= 0 {
		return
	}
	threshold := s.cfg.JournalMaxBytes
	if s.compactFloor > threshold {
		threshold = s.compactFloor
	}
	if s.journal.size() <= threshold {
		return
	}
	live := make([]*task, 0, s.pending+len(s.leasedSet))
	for _, t := range s.tasks {
		if !t.state.Terminal() {
			live = append(live, t)
		}
	}
	sortTasksBySeq(live)
	recs := make([]journalRecord, len(live))
	for i, t := range live {
		recs[i] = submitRecord(t.Task, t.submitted)
	}
	if err := s.journal.compact(recs); err != nil {
		return
	}
	s.met.compactions.Inc()
	s.compactFloor = 2 * s.journal.size()
}
