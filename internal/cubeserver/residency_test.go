package cubeserver

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datacube"
	"repro/internal/ncdf"
	"repro/internal/obs"
)

// writeGridFile writes a GNC1 file with a (time, lat, lon) variable T
// where value = t + 2*cell; imported with implicit "time" it yields
// lat*lon rows of ntime values each.
func writeGridFile(t *testing.T, dir, name string, nlat, nlon, ntime int) string {
	t.Helper()
	ds := ncdf.NewDataset()
	ds.AddDim("time", ntime)
	ds.AddDim("lat", nlat)
	ds.AddDim("lon", nlon)
	ncells := nlat * nlon
	data := make([]float32, ntime*ncells)
	for tt := 0; tt < ntime; tt++ {
		for cell := 0; cell < ncells; cell++ {
			data[tt*ncells+cell] = float32(tt + 2*cell)
		}
	}
	ds.AddVar("T", []string{"time", "lat", "lon"}, data)
	path := filepath.Join(dir, name)
	if err := ncdf.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustDispatch(t *testing.T, d Dispatcher, req *Request) *Response {
	t.Helper()
	resp := d.Dispatch(req)
	if resp.Err != "" {
		t.Fatalf("%s: %s", req.Op, resp.Err)
	}
	return resp
}

func newResidentHarness(t *testing.T, budget int64) (Dispatcher, *datacube.Engine, *obs.Registry) {
	t.Helper()
	engine := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	t.Cleanup(engine.Close)
	reg := obs.NewRegistry()
	return ResidentDispatcher(engine, budget, reg), engine, reg
}

func TestResidentBudgetDemotesColdestAndRepromotes(t *testing.T) {
	// three 4 KiB cubes against a 9000-byte budget: the third import
	// must push the coldest (first) cube down the ladder
	disp, engine, reg := newResidentHarness(t, 9000)
	dir := t.TempDir()
	var ids []string
	for i := 0; i < 3; i++ {
		p := writeGridFile(t, dir, fmt.Sprintf("f%d.nc", i), 8, 8, 16)
		resp := mustDispatch(t, disp, &Request{Op: "importfiles", Paths: []string{p}, Var: "T", ImplicitDim: "time"})
		ids = append(ids, resp.Shape.CubeID)
	}
	demoted, err := engine.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if demoted.Rows() >= 64 {
		t.Fatalf("coldest cube still has %d rows; budget not enforced", demoted.Rows())
	}
	if v := reg.Counter("cubeserver_demotions_total", "").Value(); v < 1 {
		t.Fatalf("demotions counter = %v", v)
	}
	if total := engine.MemoryBytes(); total > 9000 {
		t.Fatalf("resident bytes %d exceed budget", total)
	}

	// any data access re-promotes transparently to exact full resolution
	resp := mustDispatch(t, disp, &Request{Op: "values", CubeID: ids[0]})
	if len(resp.Values) != 64 {
		t.Fatalf("re-promoted cube has %d rows, want 64", len(resp.Values))
	}
	for cell := 0; cell < 64; cell++ {
		for tt := 0; tt < 16; tt++ {
			if want := float32(tt + 2*cell); resp.Values[cell][tt] != want {
				t.Fatalf("cell %d t %d: %g, want %g after re-promotion", cell, tt, resp.Values[cell][tt], want)
			}
		}
	}
	if v := reg.Counter("cubeserver_promotions_total", "").Value(); v < 1 {
		t.Fatalf("promotions counter = %v", v)
	}
}

func TestPipelineKeepAfterDemotionRepromotes(t *testing.T) {
	disp, engine, _ := newResidentHarness(t, 9000)
	dir := t.TempDir()
	src := mustDispatch(t, disp, &Request{
		Op: "importfiles", Paths: []string{writeGridFile(t, dir, "src.nc", 8, 8, 16)},
		Var: "T", ImplicitDim: "time",
	}).Shape.CubeID
	// two hotter imports push the source down the ladder
	for i := 0; i < 2; i++ {
		p := writeGridFile(t, dir, fmt.Sprintf("hot%d.nc", i), 8, 8, 16)
		mustDispatch(t, disp, &Request{Op: "importfiles", Paths: []string{p}, Var: "T", ImplicitDim: "time"})
	}
	if c, _ := engine.Get(src); c.Rows() >= 64 {
		t.Fatalf("source not demoted (rows=%d); test setup is wrong", c.Rows())
	}

	// a Keep-bearing pipeline on the demoted cube must transparently
	// re-promote it and compute on full-resolution data
	resp := mustDispatch(t, disp, &Request{Op: "pipeline", CubeID: src, Pipeline: []PipelineStep{
		{Op: "apply", Expr: "x*2", Keep: true},
		{Op: "reduce", RowOp: "max"},
	}})
	vals := mustDispatch(t, disp, &Request{Op: "values", CubeID: resp.Shape.CubeID}).Values
	if len(vals) != 64 {
		t.Fatalf("pipeline output rows = %d, want 64", len(vals))
	}
	for cell := 0; cell < 64; cell++ {
		// max over t of 2*(t + 2*cell) at t=15
		if want := float32(2 * (15 + 2*cell)); vals[cell][0] != want {
			t.Fatalf("cell %d: %g, want %g", cell, vals[cell][0], want)
		}
	}
}

func TestResidentDropLeavesRecipePlaceholder(t *testing.T) {
	// a budget below two fully-coarsened cubes (2 × 512 bytes at the 8x
	// rung) forces one off the end of the ladder; the dropped cube must
	// stay listed and a later data access must rebuild it from its
	// import recipe
	disp, engine, reg := newResidentHarness(t, 600)
	dir := t.TempDir()
	cold := mustDispatch(t, disp, &Request{
		Op: "importfiles", Paths: []string{writeGridFile(t, dir, "cold.nc", 8, 8, 16)},
		Var: "T", ImplicitDim: "time",
	}).Shape.CubeID
	hot := mustDispatch(t, disp, &Request{
		Op: "importfiles", Paths: []string{writeGridFile(t, dir, "hot.nc", 8, 8, 16)},
		Var: "T", ImplicitDim: "time",
	}).Shape.CubeID
	if v := reg.Counter("cubeserver_drops_total", "").Value(); v < 1 {
		t.Fatalf("drops counter = %v; budget %d should be undershootable only by dropping", v, 600)
	}
	if _, err := engine.Get(cold); err != nil {
		t.Fatalf("dropped cube left the catalog: %v", err)
	}
	if _, err := engine.Get(hot); err != nil {
		t.Fatal(err)
	}

	vals := mustDispatch(t, disp, &Request{Op: "values", CubeID: cold}).Values
	if len(vals) != 64 {
		t.Fatalf("rebuilt cube has %d rows, want 64", len(vals))
	}
	for cell := 0; cell < 64; cell++ {
		for tt := 0; tt < 16; tt++ {
			if want := float32(tt + 2*cell); vals[cell][tt] != want {
				t.Fatalf("cell %d t %d: %g, want %g after rebuild from recipe", cell, tt, vals[cell][tt], want)
			}
		}
	}
}

func TestResidentConcurrentDemotePromote(t *testing.T) {
	disp, _, _ := newResidentHarness(t, 10000)
	dir := t.TempDir()
	var ids []string
	for i := 0; i < 4; i++ {
		p := writeGridFile(t, dir, fmt.Sprintf("c%d.nc", i), 8, 8, 16)
		resp := mustDispatch(t, disp, &Request{Op: "importfiles", Paths: []string{p}, Var: "T", ImplicitDim: "time"})
		ids = append(ids, resp.Shape.CubeID)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := ids[(w+i)%len(ids)]
				switch i % 3 {
				case 0:
					resp := disp.Dispatch(&Request{Op: "values", CubeID: id})
					if resp.Err == "" && len(resp.Values) != 64 {
						t.Errorf("values on %s returned %d rows", id, len(resp.Values))
					}
				case 1:
					resp := disp.Dispatch(&Request{Op: "pipeline", CubeID: id, Pipeline: []PipelineStep{
						{Op: "reduce", RowOp: "avg"},
					}})
					if resp.Err == "" {
						_ = disp.Dispatch(&Request{Op: "delete", CubeID: resp.Shape.CubeID})
					}
				default:
					_ = disp.Dispatch(&Request{Op: "list"})
				}
			}
		}()
	}
	wg.Wait()
}

func TestResidentBytesOverWire(t *testing.T) {
	client, engine := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	per, total, err := client.ResidentBytes()
	if err != nil {
		t.Fatal(err)
	}
	if per[cube.ID()] != 4*2*4 { // 4 rows x 2 values x 4 bytes
		t.Fatalf("resident[%s] = %d, want 32", cube.ID(), per[cube.ID()])
	}
	if total != engine.MemoryBytes() {
		t.Fatalf("total %d != engine %d", total, engine.MemoryBytes())
	}
	if err := cube.Delete(); err != nil {
		t.Fatal(err)
	}
	per, total, err = client.ResidentBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 0 || total != 0 {
		t.Fatalf("after delete: per=%v total=%d", per, total)
	}
}

func TestPipelineToleranceOverWire(t *testing.T) {
	client, _ := startServer(t)
	dir := t.TempDir()
	path := writeGridFile(t, dir, "tol.nc", 8, 8, 16)
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	steps := func(tol float64) []PipelineStep {
		return []PipelineStep{
			{Op: "apply", Expr: "x-10"},
			{Op: "reduce", RowOp: "avg", Tolerance: tol},
		}
	}
	exact, err := cube.Pipeline(steps(0)...)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := exact.Values()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.5
	tol, err := cube.Pipeline(steps(eps)...)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tol.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(tv) != len(ev) {
		t.Fatalf("rows %d vs %d", len(tv), len(ev))
	}
	for r := range ev {
		if d := math.Abs(float64(tv[r][0]) - float64(ev[r][0])); d > eps+1e-3 {
			t.Fatalf("row %d: |%g-%g| = %g > eps", r, tv[r][0], ev[r][0], d)
		}
	}
}
