package datacube

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// smoothCube builds a cube whose rows vary slowly (neighboring rows
// differ by small amounts), the regime where coarse tiers pay off.
func smoothCube(t *testing.T, e *Engine, rows, n int) *Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("smooth",
		[]Dimension{{Name: "cell", Size: rows}},
		Dimension{Name: "time", Size: n},
		func(row, tt int) float32 {
			return float32(20 + 0.01*float64(row) + 3*math.Sin(float64(tt)/5))
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTierConstruction(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 10, 4) // value = row*100 + t
	tiers := c.ensureTiers()
	if len(tiers) != 3 {
		t.Fatalf("tiers = %d, want 3 (default pyramid levels)", len(tiers))
	}
	for li, tr := range tiers {
		f := 1 << (li + 1)
		wantRows := (10 + f - 1) / f
		if tr.factor != f || tr.rows != wantRows {
			t.Fatalf("level %d: factor=%d rows=%d, want %d/%d", li+1, tr.factor, tr.rows, f, wantRows)
		}
		for crow := 0; crow < tr.rows; crow++ {
			r0, r1 := crow*f, crow*f+f
			if r1 > 10 {
				r1 = 10
			}
			for tt := 0; tt < 4; tt++ {
				var s float64
				for r := r0; r < r1; r++ {
					s += float64(r*100 + tt)
				}
				want := float32(s / float64(r1-r0))
				if got := tr.mean[crow*4+tt]; got != want {
					t.Fatalf("level %d crow %d t %d: mean %g, want %g", li+1, crow, tt, got, want)
				}
			}
			// spread must bound every covered deviation
			for r := r0; r < r1; r++ {
				for tt := 0; tt < 4; tt++ {
					d := math.Abs(float64(r*100+tt) - float64(tr.mean[crow*4+tt]))
					if d > float64(tr.spread[crow]) {
						t.Fatalf("level %d crow %d: |v-mean|=%g exceeds spread %g", li+1, crow, d, tr.spread[crow])
					}
				}
			}
		}
	}
	if c.TierLevels() != 3 {
		t.Fatalf("TierLevels = %d, want 3", c.TierLevels())
	}
	if got, frag := c.Bytes(), int64(10*4*4); got <= frag {
		t.Fatalf("Bytes() = %d, want > fragment payload %d once tiers are built", got, frag)
	}
}

func TestPyramidDisabled(t *testing.T) {
	e := NewEngine(Config{Servers: 2, PyramidLevels: -1})
	t.Cleanup(e.Close)
	c := seqCube(t, e, 16, 4)
	if tiers := c.ensureTiers(); tiers != nil {
		t.Fatalf("disabled pyramid built %d tiers", len(tiers))
	}
	// tolerant plans silently run exact
	got, err := c.Lazy().Apply("x*2").Tolerance(0.5).Execute()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Apply("x*2")
	if err != nil {
		t.Fatal(err)
	}
	requireSameCube(t, "disabled-pyramid", got, want)
}

func TestConcurrentTierBuild(t *testing.T) {
	e := newTestEngine(t)
	c := smoothCube(t, e, 64, 8)
	var wg sync.WaitGroup
	results := make([][]tier, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.ensureTiers()
		}()
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("concurrent ensureTiers returned distinct pyramids")
		}
	}
}

func TestToleranceZeroBitIdentical(t *testing.T) {
	e := newTestEngine(t)
	c := smoothCube(t, e, 40, 12)
	want, err := c.Lazy().Apply("x-20").ReduceGroup("max", 4).Execute()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Lazy().Apply("x-20").ReduceGroup("max", 4).Tolerance(0).Execute()
	if err != nil {
		t.Fatal(err)
	}
	requireSameCube(t, "tolerance-zero", got, want)
	if c.TierLevels() != 0 {
		t.Fatalf("Tolerance(0) built %d tiers; must not touch the pyramid", c.TierLevels())
	}
}

func TestToleranceBoundLinear(t *testing.T) {
	e := newTestEngine(t)
	c := smoothCube(t, e, 96, 16)
	exact, err := c.Lazy().Apply("x*1.5-10").Reduce("avg").Execute()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	got, err := c.Lazy().Apply("x*1.5-10").Reduce("avg").Tolerance(eps).Execute()
	if err != nil {
		t.Fatal(err)
	}
	requireToleranceBound(t, got, exact, eps)
	st := e.Stats()
	if st.CellsProcessed == 0 {
		t.Fatal("no cell accounting recorded")
	}
}

func TestToleranceRefinesWhereNeeded(t *testing.T) {
	e := newTestEngine(t)
	// smooth background with hard spikes on a few rows: the spiky blocks
	// must refine to exact, the rest may stay coarse
	c, err := e.NewCubeFromFunc("spiky",
		[]Dimension{{Name: "cell", Size: 64}},
		Dimension{Name: "time", Size: 8},
		func(row, tt int) float32 {
			v := float32(10)
			if row == 17 || row == 40 {
				v += 500
			}
			return v + float32(tt)
		})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.Lazy().Reduce("max").Execute()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.5
	got, err := c.Lazy().Reduce("max").Tolerance(eps).Execute()
	if err != nil {
		t.Fatal(err)
	}
	requireToleranceBound(t, got, exact, eps)
	// the spike rows sit in refined blocks, so their values are exact
	for _, row := range []int{17, 40} {
		g, _ := got.Row(row)
		w, _ := exact.Row(row)
		if g[0] != w[0] {
			t.Fatalf("spike row %d: got %g, want exact %g", row, g[0], w[0])
		}
	}
}

func TestToleranceBranches(t *testing.T) {
	e := newTestEngine(t)
	c := smoothCube(t, e, 80, 24)
	base, err := e.NewCubeFromFunc("base",
		[]Dimension{{Name: "cell", Size: 80}},
		Dimension{Name: "time", Size: 24},
		func(row, tt int) float32 { return float32(19 + 0.01*float64(row)) })
	if err != nil {
		t.Fatal(err)
	}
	run := func(eps float64) []*Cube {
		t.Helper()
		p := c.Lazy().Intercube(base, "sub")
		if eps > 0 {
			p = p.Tolerance(eps)
		}
		outs, err := p.ExecuteBranches(
			Branch().Reduce("max"),
			Branch().Reduce("count_above", 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	exact := run(0)
	const eps = 0.3
	got := run(eps)
	for bi := range exact {
		requireToleranceBound(t, got[bi], exact[bi], eps)
	}
}

func TestToleranceFallsBackWithoutIntervalForm(t *testing.T) {
	if err := RegisterRowOp("test_noival", func(row []float32, _ []float64) float64 {
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		return s
	}); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	c := smoothCube(t, e, 32, 8)
	want, err := c.Lazy().Reduce("test_noival").Execute()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Lazy().Reduce("test_noival").Tolerance(0.5).Execute()
	if err != nil {
		t.Fatal(err)
	}
	requireSameCube(t, "no-interval-fallback", got, want) // exact fallback: bit-identical
}

func TestAdoptRebindsIdentity(t *testing.T) {
	e := newTestEngine(t)
	a := seqCube(t, e, 8, 4)
	id := a.ID()
	b := smoothCube(t, e, 4, 4)
	oldBID := b.ID()
	if err := e.Adopt(id, b); err != nil {
		t.Fatal(err)
	}
	got, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != b || b.ID() != id {
		t.Fatalf("Adopt did not rebind: got %p id %q", got, b.ID())
	}
	if _, err := e.Get(oldBID); err == nil {
		t.Fatalf("old id %q still resolves after Adopt", oldBID)
	}
	if err := e.Adopt("cube-9999", a); err == nil {
		t.Fatal("Adopt of unknown id succeeded")
	}
}

// requireToleranceBound asserts got stays within eps of exact, with a
// small float32 slack (interval endpoints round to nearest at every
// stage, so the guarantee is eps up to accumulated ulps).
func requireToleranceBound(t *testing.T, got, exact *Cube, eps float64) {
	t.Helper()
	if got.Rows() != exact.Rows() || got.ImplicitLen() != exact.ImplicitLen() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.Rows(), got.ImplicitLen(), exact.Rows(), exact.ImplicitLen())
	}
	gv, ev := got.Values(), exact.Values()
	var worst, maxAbs float64
	for r := range gv {
		for i := range gv[r] {
			d := math.Abs(float64(gv[r][i]) - float64(ev[r][i]))
			if d > worst {
				worst = d
			}
			if a := math.Abs(float64(ev[r][i])); a > maxAbs {
				maxAbs = a
			}
		}
	}
	slack := 1e-3 + 1e-5*maxAbs
	if worst > eps+slack {
		t.Fatalf("tolerance violated: max |got-exact| = %g > eps %g (+slack %g)", worst, eps, slack)
	}
}

func TestEvalIntervalSoundness(t *testing.T) {
	exprs := []string{
		"x*2-5",
		"abs(x)+1",
		"x>0 ? x : 0",
		"x*x",
		"min(x, 10)*max(x, -3)",
		"(x-2)/(x+50)",
		"x>=1 && x<4 ? sqrt(abs(x)) : exp(x/20)",
		"!(x>0)",
		"pow(x, 2)",
	}
	rng := rand.New(rand.NewSource(42))
	for _, src := range exprs {
		ex, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 200; trial++ {
			a := rng.Float64()*20 - 10
			b := a + rng.Float64()*5
			lo, hi := ex.EvalInterval(a, b)
			for s := 0; s <= 10; s++ {
				x := a + (b-a)*float64(s)/10
				v := ex.Eval(x)
				if math.IsNaN(v) {
					continue
				}
				if !(math.IsNaN(lo) || math.IsNaN(hi)) && (v < lo-1e-9 || v > hi+1e-9) {
					t.Fatalf("%s over [%g,%g]: value %g at x=%g escapes [%g,%g]", src, a, b, v, x, lo, hi)
				}
			}
		}
	}
}

func TestRowOpIntervalSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []struct {
		name   string
		params []float64
	}{
		{"max", nil}, {"min", nil}, {"sum", nil}, {"avg", nil}, {"std", nil},
		{"count_above", []float64{1}}, {"count_below", []float64{1}},
		{"longest_run_above", []float64{0.5}}, {"longest_run_below", []float64{0.5}},
		{"count_runs_above", []float64{0.5, 2}}, {"count_runs_below", []float64{0.5, 2}},
		{"quantile", []float64{0.9}},
	}
	for _, tc := range ops {
		op, ok := LookupRowOp(tc.name)
		if !ok {
			t.Fatalf("row op %s missing", tc.name)
		}
		ivf, ok := LookupRowOpInterval(tc.name)
		if !ok {
			t.Fatalf("interval form for %s missing", tc.name)
		}
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(12)
			lo := make([]float32, n)
			hi := make([]float32, n)
			row := make([]float32, n)
			for i := 0; i < n; i++ {
				a := float32(rng.Float64()*6 - 3)
				w := float32(rng.Float64() * 2)
				lo[i], hi[i] = a, a+w
				row[i] = a + float32(rng.Float64())*w
			}
			bl, bh := ivf(lo, hi, tc.params)
			v := op(row, tc.params)
			if v < bl-1e-9 || v > bh+1e-9 {
				t.Fatalf("%s trial %d: op=%g outside [%g,%g]\nlo=%v\nhi=%v\nrow=%v",
					tc.name, trial, v, bl, bh, lo, hi, row)
			}
		}
	}
}

func TestTolerancePropertySweep(t *testing.T) {
	// randomized sweep over chains and tolerances: every tolerant result
	// must satisfy its declared bound against the exact plan
	rng := rand.New(rand.NewSource(20260807))
	e := newTestEngine(t)
	for trial := 0; trial < 40; trial++ {
		rows := []int{7, 16, 33, 64}[rng.Intn(4)]
		n := []int{4, 8, 12}[rng.Intn(3)]
		scale := rng.Float64() * 4
		c, err := e.NewCubeFromFunc(fmt.Sprintf("p%d", trial),
			[]Dimension{{Name: "cell", Size: rows}},
			Dimension{Name: "time", Size: n},
			func(row, tt int) float32 {
				return float32(10 + scale*math.Sin(float64(row)/9) + float64(tt%3))
			})
		if err != nil {
			t.Fatal(err)
		}
		variant := rng.Intn(3)
		build := func() *Plan {
			p := c.Lazy().Apply("x-10")
			switch variant {
			case 0:
				p = p.Reduce("avg")
			case 1:
				p = p.ReduceGroup("max", n)
			case 2:
				p = p.Subset(0, n/2+1).Reduce("sum")
			}
			return p
		}
		exact, err := build().Execute()
		if err != nil {
			t.Fatal(err)
		}
		eps := []float64{0.01, 0.1, 0.5, 2}[rng.Intn(4)]
		got, err := build().Tolerance(eps).Execute()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("trial %d: rows=%d n=%d variant=%d eps=%g", trial, rows, n, variant, eps)
		requireToleranceBound(t, got, exact, eps)
	}
}
