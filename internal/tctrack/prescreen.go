package tctrack

import (
	"fmt"

	"repro/internal/datacube"
	"repro/internal/esm"
)

// This file adds a datacube-backed prescreen in front of the per-cell
// detection scan. Full detection visits every grid cell of every step
// with ring and neighbourhood stencils; a cyclone, however, is compact:
// the latitude stripe through its centre shows a pressure contrast
// (stripe mean minus stripe minimum) on the order of the ring
// depression, while the synoptic noise field is large-scale and smooth
// along longitude. The prescreen packs PSL stripe-major — one cube row
// per (step, latitude), longitudes on the implicit axis — computes the
// per-stripe min and mean in one fused two-output datacube pass, and
// runs the expensive stencil scan only on steps where some stripe's
// contrast clears the detection threshold minus a safety margin.
// Because the contrast plan is a plain datacube plan, it rides the
// engine's resolution pyramid: a declared Tolerance executes it
// coarse-first, and the gate is widened by the declared error bound so
// pruning stays conservative.

// Params configures the prescreen.
type Params struct {
	// Criteria are the detection thresholds used on candidate steps.
	Criteria Criteria
	// Tolerance is the per-value error bound granted to the stripe plan
	// (datacube.Plan.Tolerance). Zero keeps the prescreen exact: the
	// stripe pass is byte-identical to eager execution.
	Tolerance float64
	// MarginPa widens the candidate gate below MinDepressionPa to absorb
	// the gap between the ring-local mean (what detection compares
	// against) and the stripe mean (what the prescreen sees). Zero
	// selects DefaultMarginPa.
	MarginPa float64
}

// DefaultMarginPa is the default prescreen safety margin: the stripe
// mean tracks the ring mean to well within a couple hundred Pa under
// the simulator's synoptic noise.
const DefaultMarginPa = 200

// PrescreenResult is a tracked run plus prescreen accounting.
type PrescreenResult struct {
	// Tracks are the qualifying storm tracks, as RunModel would return.
	Tracks []*Track
	// StepsTotal is the number of model steps in the run; StepsScanned
	// the number that passed the prescreen and got the full stencil scan.
	StepsTotal, StepsScanned int
}

// Prescreen consumes the model like RunModel, but gates the per-cell
// detection scan on the datacube stripe prescreen executed on e.
func Prescreen(e *datacube.Engine, m *esm.Model, p Params) (*PrescreenResult, error) {
	if p.MarginPa == 0 {
		p.MarginPa = DefaultMarginPa
	}
	g := m.Config().Grid
	// Drain the model, keeping the day outputs for the candidate scan and
	// packing PSL stripe-major: row (step*NLat + i) holds latitude i of
	// model step, longitudes on the implicit axis. PSL fields are already
	// row-major lat×lon, so the packed buffer is a straight concatenation.
	var days []*esm.DayOutput
	var psl []float32
	for {
		d := m.StepDay()
		if d == nil {
			break
		}
		days = append(days, d)
		for s := 0; s < esm.StepsPerDay; s++ {
			f, err := d.Field(s, "PSL")
			if err != nil {
				return nil, err
			}
			psl = append(psl, f.Data...)
		}
	}
	res := &PrescreenResult{StepsTotal: len(days) * esm.StepsPerDay}
	if len(days) == 0 {
		res.Tracks = NewTracker().Finish()
		return res, nil
	}

	cube, err := e.NewCubeFromFunc("PSL_STRIPES",
		[]datacube.Dimension{{Name: "step", Size: res.StepsTotal}, {Name: "lat", Size: g.NLat}},
		datacube.Dimension{Name: "lon", Size: g.NLon},
		func(row, j int) float32 { return psl[row*g.NLon+j] })
	if err != nil {
		return nil, err
	}
	defer cube.Delete()
	outs, err := cube.Lazy().Tolerance(p.Tolerance).ExecuteBranches(
		datacube.Branch().Reduce("min"),
		datacube.Branch().Reduce("avg"),
	)
	if err != nil {
		return nil, err
	}
	mins, avgs := outs[0], outs[1]
	defer mins.Delete()
	defer avgs.Delete()
	minV, avgV := mins.Values(), avgs.Values()
	if len(minV) != res.StepsTotal*g.NLat {
		return nil, fmt.Errorf("tctrack: prescreen produced %d rows, want %d", len(minV), res.StepsTotal*g.NLat)
	}

	// Each reduced value carries at most Tolerance of error, so a stripe
	// contrast (avg - min) carries at most twice that; widen the gate.
	gate := p.Criteria.MinDepressionPa - p.MarginPa - 2*p.Tolerance
	tr := NewTracker()
	for step := 0; step < res.StepsTotal; step++ {
		contrast := 0.0
		for i := 0; i < g.NLat; i++ {
			r := step*g.NLat + i
			if c := float64(avgV[r][0]) - float64(minV[r][0]); c > contrast {
				contrast = c
			}
		}
		if contrast < gate {
			tr.Advance(nil) // no candidate: any open track closes, as with zero detections
			continue
		}
		res.StepsScanned++
		d := days[step/esm.StepsPerDay]
		dets, err := DetectStep(d, step%esm.StepsPerDay, p.Criteria)
		if err != nil {
			return nil, err
		}
		tr.Advance(dets)
	}
	res.Tracks = tr.Finish()
	return res, nil
}
