package cubeserver

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/datacube"
	"repro/internal/obs"
)

// These tests pin the v2 wire layer: codec round-trips, gob parity on
// nil-vs-empty, response routing under heavy multiplexing, mixed-
// version negotiation, and the server's timeout/garbage accounting.

func fullRequest() *Request {
	return &Request{
		Op: "pipeline", CubeID: "cube-7", OtherID: "cube-9",
		Paths: []string{"/a.nc", "/b.nc"}, Var: "T", ImplicitDim: "time",
		Expr: "x>5 ? 1 : 0", RowOp: "sum", Params: []float64{1.5, -2.25, 1e300},
		Group: 4, Lo: 2, Hi: 14, Row: 3, Key: "k", Value: "v", Path: "/out.nc",
		Shard: 1, Shards: 4,
		Values: [][]float32{{1, 2, 3}, {4, 5, 6}},
		Dims:   []datacube.Dimension{{Name: "lat", Size: 2}, {Name: "lon", Size: 3}},
		Pipeline: []PipelineStep{
			{Op: "apply", Expr: "x*2", Keep: true},
			{Op: "reduce", RowOp: "avg", Params: []float64{0.5}, Group: 2, Lo: 1, Hi: 9, OtherID: "cube-3", Tolerance: 0.25},
		},
	}
}

func fullResponse() *Response {
	return &Response{
		Err: "boom", ErrCode: CodeNotFound,
		Shape: Shape{CubeID: "cube-1", Rows: 8, ImplicitLen: 16, Fragments: 4, Measure: "T",
			ExplicitDims: []datacube.Dimension{{Name: "lat", Size: 8}}, ImplicitName: "time"},
		Values:   [][]float32{{1.5}, {2.5, 3.5}},
		Partials: []float64{1, 2, 3.75},
		Scalar:   6.5, IDs: []string{"cube-1", "cube-2"}, Value: "pong", Found: true,
		Stats:    datacube.Stats{FileReads: 1, CellsProcessed: 2, Ops: 3, FragmentTasks: 4},
		Resident: map[string]int64{"cube-1": 1024, "cube-2": 2048}, ResidentTotal: 3072,
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	req := fullRequest()
	var got Request
	if err := DecodeRequestV2(AppendRequestV2(nil, req), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, req) {
		t.Fatalf("request round trip diverged:\ngot  %+v\nwant %+v", &got, req)
	}

	resp := fullResponse()
	var gotR Response
	if err := DecodeResponseV2(AppendResponseV2(nil, resp), &gotR); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&gotR, resp) {
		t.Fatalf("response round trip diverged:\ngot  %+v\nwant %+v", &gotR, resp)
	}
}

// TestWireCodecGobParity decodes the same zero-ish response through
// both codecs and demands identical structs — in particular, empty
// slices and maps must come back nil on both paths, or DeepEqual-based
// equivalence checks would tell codecs apart.
func TestWireCodecGobParity(t *testing.T) {
	for _, resp := range []*Response{
		{},
		{Values: [][]float32{}, Partials: []float64{}, IDs: []string{}, Resident: map[string]int64{}},
		fullResponse(),
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			t.Fatal(err)
		}
		var viaGob Response
		if err := gob.NewDecoder(&buf).Decode(&viaGob); err != nil {
			t.Fatal(err)
		}
		var viaV2 Response
		if err := DecodeResponseV2(AppendResponseV2(nil, resp), &viaV2); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaGob, viaV2) {
			t.Fatalf("codec asymmetry:\ngob %+v\nv2  %+v", viaGob, viaV2)
		}
	}
}

// TestDecodeStaleFieldsCleared pins the pooled-struct contract: a
// decode into a dirty struct must not leak the previous request's
// slice fields when the new frame has zero entries.
func TestDecodeStaleFieldsCleared(t *testing.T) {
	var req Request
	if err := DecodeRequestV2(AppendRequestV2(nil, fullRequest()), &req); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestV2(AppendRequestV2(nil, &Request{Op: "ping"}), &req); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&req, &Request{Op: "ping"}) {
		t.Fatalf("stale fields survived re-decode: %+v", &req)
	}
}

func TestDialNegotiatesV2(t *testing.T) {
	client, _ := startServer(t)
	if got := client.Codec(); got != "v2" {
		t.Fatalf("default dial negotiated %q, want v2", got)
	}
}

// TestMuxConcurrentDo hammers one multiplexed client from many
// goroutines with interleaved large (putcube/values) and small (ping)
// payloads, and checks every goroutine reads back exactly the payload
// it wrote — response frames must never cross wires.
func TestMuxConcurrentDo(t *testing.T) {
	client, _ := startServer(t)
	if client.Codec() != "v2" {
		t.Fatalf("want a v2 session, got %q", client.Codec())
	}

	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 { // small payloads
					if err := client.Ping(); err != nil {
						errs <- err
						return
					}
					continue
				}
				// Large payload: land a cube whose cells encode this
				// goroutine's identity, read it back, verify, delete.
				rows := make([][]float32, 32)
				for r := range rows {
					rows[r] = make([]float32, 512)
					for c := range rows[r] {
						rows[r][c] = float32(w*1000000 + r*1000 + c)
					}
				}
				resp, err := client.call(&Request{
					Op: "putcube", Var: "T", ImplicitDim: "time",
					Values: rows, Dims: []datacube.Dimension{{Name: "row", Size: 32}},
				})
				if err != nil {
					errs <- err
					return
				}
				cube := &RemoteCube{client: client, Shape: resp.Shape}
				got, err := cube.Values()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, rows) {
					errs <- fmt.Errorf("worker %d iter %d: echoed cube diverged", w, i)
					return
				}
				if err := cube.Delete(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// interopPipelineResult runs a fixed import+pipeline+values against a
// server through one client and returns the final values.
func interopPipelineResult(t *testing.T, client *Client, path string) [][]float32 {
	t.Helper()
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	out, err := cube.Pipeline(
		PipelineStep{Op: "apply", Expr: "x*2"},
		PipelineStep{Op: "reducegroup", RowOp: "max", Group: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := out.Values()
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestInteropMixedVersions crosses both client generations with both
// server generations and demands byte-identical pipeline results, plus
// sentinel identity on each negotiated path.
func TestInteropMixedVersions(t *testing.T) {
	path := writeTestFile(t, t.TempDir(), "a.nc")

	run := func(t *testing.T, gobOnlyServer bool, dial func(string) (*Client, error), wantCodec string) [][]float32 {
		t.Helper()
		engine := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
		srv, err := ServeOptions("127.0.0.1:0", EngineDispatcher(engine), nil, Options{GobOnly: gobOnlyServer})
		if err != nil {
			t.Fatal(err)
		}
		client, err := dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close(); srv.Close(); engine.Close() })
		if got := client.Codec(); got != wantCodec {
			t.Fatalf("negotiated %q, want %q", got, wantCodec)
		}
		// Sentinels survive whatever codec was negotiated.
		if _, err := client.call(&Request{Op: "shape", CubeID: "cube-404"}); !errors.Is(err, datacube.ErrNotFound) {
			t.Fatalf("want ErrNotFound across %s wire, got %v", wantCodec, err)
		}
		return interopPipelineResult(t, client, path)
	}

	v2v2 := run(t, false, Dial, "v2")
	v2Gob := run(t, true, Dial, "gob")     // v2 client negotiates down
	gobV2 := run(t, false, DialGob, "gob") // legacy client, modern server
	gobGob := run(t, true, DialGob, "gob") // legacy both sides
	for name, got := range map[string][][]float32{"v2↔gob-only": v2Gob, "gob↔v2": gobV2, "gob↔gob": gobGob} {
		if !reflect.DeepEqual(got, v2v2) {
			t.Fatalf("%s diverged from v2↔v2:\ngot  %v\nwant %v", name, got, v2v2)
		}
	}
}

// TestServerCountsV2Garbage opens a negotiated v2 session, then feeds
// the server a well-framed but undecodable request and an oversized
// frame; both must be counted, and the first must not kill the session.
func TestServerCountsV2Garbage(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	reg := obs.NewRegistry()
	srv, err := ServeDispatcher("127.0.0.1:0", EngineDispatcher(engine), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wireMagic[:]); err != nil {
		t.Fatal(err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack != wireMagic {
		t.Fatalf("no magic ack: %v %v", ack, err)
	}

	// Well-delimited frame whose body is garbage: counted, answered with
	// an error response, session survives.
	frame := finishFrame(append(beginFrame(nil, frameRequest, 1), 0xde, 0xad, 0xbe, 0xef))
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var resp Response
	ftype, id, rframe, body, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != frameResponse || id != 1 {
		t.Fatalf("frame type %d id %d", ftype, id)
	}
	if err := DecodeResponseV2(body, &resp); err != nil {
		t.Fatal(err)
	}
	putBuf(rframe)
	if resp.Err == "" {
		t.Fatal("garbage body produced a success response")
	}
	if got := srv.met.protoErrs.Value(); got != 1 {
		t.Fatalf("proto errors after garbage body = %v, want 1", got)
	}

	// Oversized frame: counted, connection dropped.
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], maxFrameBytes+1)
	if _, err := conn.Write(huge[:]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.met.protoErrs.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("oversized frame never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// The server still accepts fresh clients.
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerIdleTimeout pins the stalled-peer fix: a connection that
// negotiates and then goes silent is closed once the idle horizon
// passes, and the expiry is counted.
func TestServerIdleTimeout(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	reg := obs.NewRegistry()
	srv, err := ServeOptions("127.0.0.1:0", EngineDispatcher(engine), reg,
		Options{IdleTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wireMagic[:]); err != nil {
		t.Fatal(err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}

	// Go silent; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(ack[:1]); err == nil || isTimeout(err) {
		t.Fatalf("want server-side hangup, got %v", err)
	}
	if got := srv.met.connTimeouts.Value(); got != 1 {
		t.Fatalf("conn timeouts = %v, want 1", got)
	}
}

// slowDispatcher delays every request — long enough to outlast a short
// idle horizon, which must NOT kill a connection that is merely busy.
type slowDispatcher struct {
	d     Dispatcher
	delay time.Duration
}

func (s slowDispatcher) Dispatch(req *Request) *Response {
	time.Sleep(s.delay)
	return s.d.Dispatch(req)
}

// TestIdleTimeoutSparesBusyConns runs a request that takes 5× the idle
// horizon to execute; the connection is busy, not idle, and the call
// must complete.
func TestIdleTimeoutSparesBusyConns(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	srv, err := ServeOptions("127.0.0.1:0", slowDispatcher{d: EngineDispatcher(engine), delay: 150 * time.Millisecond}, nil,
		Options{IdleTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatalf("slow request killed by idle timeout: %v", err)
	}
}

// TestClientCloseConcurrentSafe closes a client from one goroutine
// while others are mid-Do, then demands Close idempotency and
// ErrClientBroken on later use.
func TestClientCloseConcurrentSafe(t *testing.T) {
	for _, dial := range []struct {
		name string
		fn   func(string) (*Client, error)
	}{{"v2", Dial}, {"gob", DialGob}} {
		t.Run(dial.name, func(t *testing.T) {
			engine := datacube.NewEngine(datacube.Config{Servers: 1})
			defer engine.Close()
			srv, err := Serve("127.0.0.1:0", engine)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			client, err := dial.fn(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 50; j++ {
						if err := client.Ping(); err != nil {
							return // the close raced us, as intended
						}
					}
				}()
			}
			time.Sleep(time.Millisecond)
			for i := 0; i < 3; i++ {
				if err := client.Close(); err != nil {
					t.Fatalf("close %d: %v", i, err)
				}
			}
			wg.Wait()
			if !client.Broken() {
				t.Fatal("closed client not reported broken")
			}
			err = client.Ping()
			if err == nil {
				t.Fatal("ping succeeded on closed client")
			}
		})
	}
}

// FuzzWireFrame throws arbitrary bytes at both v2 body decoders and at
// the frame reader; nothing may panic, and whatever decodes must
// re-encode to a byte-identical body (round-trip stability).
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendRequestV2(nil, fullRequest()))
	f.Add(AppendResponseV2(nil, fullResponse()))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Truncations of a valid body hit every length-check branch.
	valid := AppendRequestV2(nil, fullRequest())
	f.Add(valid[:len(valid)/2])
	// A frame header claiming more than the body delivers.
	f.Add(finishFrame(append(beginFrame(nil, frameRequest, 7), 0xba, 0xad)))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := DecodeRequestV2(data, &req); err == nil {
			re := AppendRequestV2(nil, &req)
			if !bytes.Equal(re, data) {
				t.Fatalf("request re-encode diverged from accepted input")
			}
		}
		var resp Response
		if err := DecodeResponseV2(data, &resp); err == nil && len(resp.Resident) <= 1 {
			// Skip multi-entry Resident maps: iteration order makes their
			// re-encoding non-canonical by design.
			re := AppendResponseV2(nil, &resp)
			if !bytes.Equal(re, data) {
				t.Fatalf("response re-encode diverged from accepted input")
			}
		}
		// Frame reader over the raw bytes: must terminate without panic
		// and never hand back a frame larger than the input.
		ftype, _, frame, body, _, err := readFrame(bytes.NewReader(data))
		if err == nil {
			if ftype != frameRequest && ftype != frameResponse {
				_ = ftype // unknown types are the session loop's problem
			}
			if len(body) > len(data) {
				t.Fatalf("frame body %d bytes from %d input bytes", len(body), len(data))
			}
			putBuf(frame)
		}
	})
}
