package chaos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestZeroFaultAndNilRules(t *testing.T) {
	inj := NewSeeded(1)
	f := inj.Decide(SiteTask, "anything", 0)
	if f.Kind != None {
		t.Fatalf("no rules should mean no fault, got %v", f.Kind)
	}
	if err := f.Error(); err != nil {
		t.Fatalf("None fault materialized error %v", err)
	}
	if inj.Injected() != 0 {
		t.Fatalf("Injected = %d, want 0", inj.Injected())
	}
}

func TestRuleMatching(t *testing.T) {
	inj := NewSeeded(1,
		Rule{Site: SiteCopy, Op: "era5", Attempt: 0, Kind: Transient},
	)
	cases := []struct {
		site    Site
		op      string
		attempt int
		want    Kind
	}{
		{SiteCopy, "era5/t2m_1950.nc", 0, Transient}, // substring op match
		{SiteCopy, "era5/t2m_1950.nc", 1, None},      // wrong attempt
		{SiteTask, "era5_import", 0, None},           // wrong site
		{SiteCopy, "cmip6/tas.nc", 0, None},          // wrong op
	}
	for _, c := range cases {
		if got := inj.Decide(c.site, c.op, c.attempt).Kind; got != c.want {
			t.Errorf("Decide(%s, %q, %d) = %v, want %v", c.site, c.op, c.attempt, got, c.want)
		}
	}
}

func TestDeterministicAcrossOrderAndRuns(t *testing.T) {
	rules := []Rule{{Site: SiteTask, Kind: Transient, Prob: 0.4}}
	ops := make([]string, 50)
	for i := range ops {
		ops[i] = fmt.Sprintf("task_%02d", i)
	}

	decide := func(inj *SeededInjector, order []int) map[string]Kind {
		out := make(map[string]Kind)
		for _, i := range order {
			out[ops[i]] = inj.Decide(SiteTask, ops[i], 0).Kind
		}
		return out
	}

	fwd := make([]int, len(ops))
	rev := make([]int, len(ops))
	for i := range ops {
		fwd[i] = i
		rev[i] = len(ops) - 1 - i
	}

	a := decide(NewSeeded(42, rules...), fwd)
	b := decide(NewSeeded(42, rules...), rev) // reversed call order
	for op, k := range a {
		if b[op] != k {
			t.Fatalf("op %s: order changed decision %v -> %v", op, k, b[op])
		}
	}

	// A different seed should produce a different pattern (not all-equal).
	c := decide(NewSeeded(43, rules...), fwd)
	same := true
	for op, k := range a {
		if c[op] != k {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical decisions for 50 ops; roll is not seed-sensitive")
	}

	// Probability should be roughly honored (0.4 of 50 = 20, allow wide slack).
	hits := 0
	for _, k := range a {
		if k == Transient {
			hits++
		}
	}
	if hits < 5 || hits > 35 {
		t.Fatalf("prob 0.4 fired %d/50 times; distribution is broken", hits)
	}
}

func TestMaxBoundsInjections(t *testing.T) {
	inj := NewSeeded(7, Rule{Site: SiteCheckpoint, Op: "validate", Kind: Crash, Max: 1})
	first := inj.Decide(SiteCheckpoint, "validate_store", 0)
	if first.Kind != Crash {
		t.Fatalf("first decision = %v, want Crash", first.Kind)
	}
	for i := 0; i < 5; i++ {
		if k := inj.Decide(SiteCheckpoint, "validate_store", 0).Kind; k != None {
			t.Fatalf("rule with Max=1 fired again (decision %d: %v)", i, k)
		}
	}
	if got := inj.CountKind(Crash); got != 1 {
		t.Fatalf("CountKind(Crash) = %d, want 1", got)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	inj := NewSeeded(1,
		Rule{Site: SiteTask, Op: "esm", Kind: PermanentKind},
		Rule{Site: SiteTask, Kind: Transient},
	)
	if k := inj.Decide(SiteTask, "esm_run", 0).Kind; k != PermanentKind {
		t.Fatalf("specific rule lost to general rule: %v", k)
	}
	if k := inj.Decide(SiteTask, "monitor", 0).Kind; k != Transient {
		t.Fatalf("general rule did not fire: %v", k)
	}
}

func TestFaultErrorTyping(t *testing.T) {
	cause := errors.New("disk on fire")

	tr := Fault{Kind: Transient, Err: cause}.Error()
	if !errors.Is(tr, ErrInjected) || !errors.Is(tr, cause) {
		t.Fatalf("transient error lost its causes: %v", tr)
	}
	if IsPermanent(tr) {
		t.Fatal("transient error marked permanent")
	}

	pe := Fault{Kind: PermanentKind}.Error()
	if !IsPermanent(pe) || !errors.Is(pe, ErrInjected) {
		t.Fatalf("permanent error mis-typed: %v", pe)
	}

	if (Fault{Kind: Latency, Delay: time.Second}).Error() != nil {
		t.Fatal("latency fault should not materialize as an error")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
	if IsPermanent(nil) {
		t.Fatal("IsPermanent(nil) must be false")
	}
	wrapped := fmt.Errorf("task failed: %w", Permanent(cause))
	if !IsPermanent(wrapped) {
		t.Fatal("IsPermanent must see through wrapping")
	}
}

func TestConcurrentDecideIsSafe(t *testing.T) {
	inj := NewSeeded(3,
		Rule{Site: SiteTask, Kind: Transient, Prob: 0.5},
		Rule{Site: SiteCopy, Kind: Latency, Delay: time.Millisecond, Max: 10},
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				inj.Decide(SiteTask, fmt.Sprintf("t%d_%d", g, i), i%3)
				inj.Decide(SiteCopy, fmt.Sprintf("c%d_%d", g, i), 0)
			}
		}(g)
	}
	wg.Wait()
	if got := inj.CountKind(Latency); got != 10 {
		t.Fatalf("Max=10 latency rule fired %d times", got)
	}
	if len(inj.Events()) != inj.Injected() {
		t.Fatal("Events/Injected disagree")
	}
}
