package ml

// The batched, zero-alloc inference engine behind the TC localizer.
//
// Training keeps the Layer path: Forward caches whatever Backward
// needs, which couples one layer instance to one goroutine and
// allocates fresh tensors per call. Inference has the opposite needs —
// the paper's workflow (§5.4) runs the pre-trained CNN over every
// tiled patch of every 6-hourly step, so the hot path wants batching,
// reuse and parallelism. Compile lowers the network once into a
// forward-only plan whose stages are:
//
//   - Conv2D  → im2col + blocked GEMM (gemm.go), one GEMM for the
//     whole batch instead of one small matmul per patch;
//   - Dense   → the same GEMM over a feature-major activation matrix;
//   - ReLU    → an in-place elementwise pass (no masks);
//   - MaxPool2→ a direct strided pass (no argmax arrays);
//
// executed over per-session preallocated buffers, so steady-state
// PredictBatch performs zero allocations. Activations are kept
// channel-major — (C, N, H, W) through the spatial stages, (features,
// N) after flatten — which is what lets every layer be a single GEMM
// per step and keeps the GEMM's ascending-k accumulation order
// identical to the scalar reference layers: predictions are
// bit-for-bit the same, patch by patch (infer_test.go proves it).
//
// A Localizer lazily owns an engine: a pool of up to Params.Workers
// independent sessions that DetectFields fans a step's patch sweep
// across. Params{Reference: true} is the escape hatch back to the
// layer-by-layer path.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Params configures the localizer's inference engine.
type Params struct {
	// Reference forces the layer-by-layer scalar path (the numerical
	// reference the compiled engine is tested against).
	Reference bool
	// Workers sizes the session pool DetectFields fans patch sweeps
	// across; 0 means GOMAXPROCS.
	Workers int
	// MaxBatch pre-sizes each session's buffers for this many patches;
	// larger batches still work (buffers grow once and stay). 0 means 32.
	MaxBatch int
	// Metrics, when set, registers ml_infer_* instruments (see
	// internal/obs); nil records into the void.
	Metrics *obs.Registry
	// Tracer, when set, emits ml.predict_batch / ml.im2col / ml.gemm
	// spans per batch; nil disables span recording entirely.
	Tracer *obs.Tracer
}

func (p Params) withDefaults() Params {
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	return p
}

// inferObs bundles the engine's instruments; shared by every session
// of one engine.
type inferObs struct {
	patches      *obs.Counter
	batchSeconds *obs.Histogram
	tracer       *obs.Tracer
}

func newInferObs(p Params) *inferObs {
	return &inferObs{
		patches: p.Metrics.Counter("ml_infer_patches_total",
			"Patches predicted by the compiled CNN inference engine."),
		batchSeconds: p.Metrics.Histogram("ml_infer_batch_seconds",
			"Wall-clock time of one batched CNN forward pass.",
			[]float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5}),
		tracer: p.Tracer,
	}
}

// --- plan lowering -------------------------------------------------------

type opKind int

const (
	opConv opKind = iota
	opReLU
	opPool
	opGather // channel-major (C,N,h,w) → feature-major (C*h*w, N)
	opDense
)

// planOp is one lowered stage with its per-sample input/output extents
// resolved at compile time. Weight-bearing ops point at the live layer
// parameters, so a session picks up in-place weight updates without
// recompiling.
type planOp struct {
	kind  opKind
	conv  *Conv2D
	dense *Dense
	// input extents per sample (flat stages: c = features, h = w = 1)
	c, h, w int
	// output extents per sample
	oc, oh, ow int
}

// inferPlan is the compiled forward-only program; immutable and shared
// by every session of an engine.
type inferPlan struct {
	ops           []planOp
	inC, inH, inW int
	maxAct        int // widest per-sample activation across stages
	maxCol        int // widest per-sample im2col matrix across convs
}

// lower compiles the layer stack for a patchH×patchW input.
func lower(net *Network, patchH, patchW int) (*inferPlan, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("ml: compile: empty network")
	}
	inC := len(Channels)
	if cv, ok := net.Layers[0].(*Conv2D); ok {
		inC = cv.InC
	}
	p := &inferPlan{inC: inC, inH: patchH, inW: patchW}
	c, h, w := inC, patchH, patchW
	flat := false
	bump := func(sz int) {
		if sz > p.maxAct {
			p.maxAct = sz
		}
	}
	bump(c * h * w)
	for li, layer := range net.Layers {
		switch v := layer.(type) {
		case *Conv2D:
			if flat {
				return nil, fmt.Errorf("ml: compile: conv layer %d after flatten", li)
			}
			if v.InC != c {
				return nil, fmt.Errorf("ml: compile: conv layer %d wants %d channels, has %d", li, v.InC, c)
			}
			oh, ow := h-v.K+1, w-v.K+1
			if oh < 1 || ow < 1 {
				return nil, fmt.Errorf("ml: compile: conv layer %d underflows %dx%d input", li, h, w)
			}
			p.ops = append(p.ops, planOp{kind: opConv, conv: v, c: c, h: h, w: w, oc: v.OutC, oh: oh, ow: ow})
			if col := c * v.K * v.K * oh * ow; col > p.maxCol {
				p.maxCol = col
			}
			c, h, w = v.OutC, oh, ow
		case *ReLU:
			p.ops = append(p.ops, planOp{kind: opReLU, c: c, h: h, w: w})
		case *MaxPool2:
			if flat {
				return nil, fmt.Errorf("ml: compile: pool layer %d after flatten", li)
			}
			oh, ow := h/2, w/2
			if oh < 1 || ow < 1 {
				return nil, fmt.Errorf("ml: compile: pool layer %d underflows %dx%d input", li, h, w)
			}
			p.ops = append(p.ops, planOp{kind: opPool, c: c, h: h, w: w, oc: c, oh: oh, ow: ow})
			h, w = oh, ow
		case *Flatten:
			if !flat {
				p.ops = append(p.ops, planOp{kind: opGather, c: c, h: h, w: w, oc: c * h * w, oh: 1, ow: 1})
				flat, c, h, w = true, c*h*w, 1, 1
			}
		case *Dense:
			if !flat {
				p.ops = append(p.ops, planOp{kind: opGather, c: c, h: h, w: w, oc: c * h * w, oh: 1, ow: 1})
				flat, c, h, w = true, c*h*w, 1, 1
			}
			if v.In != c {
				return nil, fmt.Errorf("ml: compile: dense layer %d wants %d inputs, has %d", li, v.In, c)
			}
			p.ops = append(p.ops, planOp{kind: opDense, dense: v, c: c, h: 1, w: 1, oc: v.Out, oh: 1, ow: 1})
			c = v.Out
		default:
			return nil, fmt.Errorf("ml: compile: unsupported layer %T", layer)
		}
		bump(c * h * w)
	}
	if !flat || c != 3 {
		return nil, fmt.Errorf("ml: compile: network head emits %d values, want (presence, row, col)", c)
	}
	return p, nil
}

// --- sessions ------------------------------------------------------------

// InferSession executes a compiled plan over preallocated buffers. One
// session serves one goroutine at a time; acquire independent sessions
// (or let the Localizer's engine pool do it) for concurrent inference.
type InferSession struct {
	plan *inferPlan
	obs  *inferObs

	cap        int // allocated batch capacity
	actA, actB []float64
	col        []float64
	preds      []Prediction
}

// Compile lowers the localizer network into a forward-only execution
// plan and returns a session sized for p.MaxBatch patches. The session
// reads the live layer weights, so training the localizer between
// batches is picked up without recompiling (but not concurrently with
// inference).
func (l *Localizer) Compile(p Params) (*InferSession, error) {
	plan, err := lower(l.Net, l.PatchH, l.PatchW)
	if err != nil {
		return nil, err
	}
	s := &InferSession{plan: plan, obs: newInferObs(p)}
	s.ensure(p.withDefaults().MaxBatch)
	return s, nil
}

// ensure grows the session buffers to hold an n-patch batch under the
// session's current plan. Buffers also regrow when a hot-swapped plan
// needs wider activations; steady-state calls only compare lengths and
// allocate nothing.
func (s *InferSession) ensure(n int) {
	if n > s.cap {
		s.cap = n
	}
	if need := s.plan.maxAct * s.cap; need > len(s.actA) {
		s.actA = make([]float64, need)
		s.actB = make([]float64, need)
	}
	if need := s.plan.maxCol * s.cap; need > len(s.col) {
		s.col = make([]float64, need)
	}
	if s.cap > len(s.preds) {
		s.preds = make([]Prediction, s.cap)
	}
}

// PredictBatch runs every patch of x — an (N,C,H,W) batch tensor, or a
// single (C,H,W) patch — through the compiled plan and returns one
// prediction per patch. The result slice is backed by session memory
// and valid until the next call. Steady-state calls allocate nothing.
// Shape mismatches panic (programmer error), like the reference
// layers.
func (s *InferSession) PredictBatch(x *Tensor) []Prediction {
	p := s.plan
	n := 1
	switch len(x.Shape) {
	case 4:
		n = x.Shape[0]
		if x.Shape[1] != p.inC || x.Shape[2] != p.inH || x.Shape[3] != p.inW {
			panic(fmt.Sprintf("ml: batch shape %v, want (N,%d,%d,%d)", x.Shape, p.inC, p.inH, p.inW))
		}
	case 3:
		if x.Shape[0] != p.inC || x.Shape[1] != p.inH || x.Shape[2] != p.inW {
			panic(fmt.Sprintf("ml: patch shape %v, want (%d,%d,%d)", x.Shape, p.inC, p.inH, p.inW))
		}
	default:
		panic(fmt.Sprintf("ml: batch tensor rank %d, want 3 or 4", len(x.Shape)))
	}
	s.ensure(n)
	// (N,C,H,W) → channel-major (C,N,H,W): contiguous H·W block moves
	hw := p.inH * p.inW
	for smp := 0; smp < n; smp++ {
		for c := 0; c < p.inC; c++ {
			copy(s.actA[(c*n+smp)*hw:(c*n+smp+1)*hw], x.Data[(smp*p.inC+c)*hw:(smp*p.inC+c+1)*hw])
		}
	}
	return s.forward(n)
}

// forward executes the plan over the n-patch batch already loaded into
// actA and returns the head predictions.
func (s *InferSession) forward(n int) []Prediction {
	start := time.Now()
	var sp *obs.Span
	if s.obs.tracer != nil {
		sp = s.obs.tracer.Start("ml.predict_batch", obs.Attr{Key: "batch", Value: strconv.Itoa(n)})
	}
	cur, nxt := s.actA, s.actB
	for i := range s.plan.ops {
		op := &s.plan.ops[i]
		switch op.kind {
		case opConv:
			s.convForward(op, n, cur, nxt, sp)
			cur, nxt = nxt, cur
		case opReLU:
			buf := cur[:op.c*op.h*op.w*n]
			for j, v := range buf {
				if !(v > 0) {
					buf[j] = 0
				}
			}
		case opPool:
			poolForward(op, n, cur, nxt)
			cur, nxt = nxt, cur
		case opGather:
			gatherForward(op, n, cur, nxt)
			cur, nxt = nxt, cur
		case opDense:
			d := op.dense
			g := sp.Start("ml.gemm")
			fillRows(d.Out, n, d.B, nxt)
			gemmAcc(d.Out, n, d.In, d.W, cur, nxt)
			g.End()
			cur, nxt = nxt, cur
		}
	}
	preds := s.preds[:n]
	for i := range preds {
		preds[i] = Prediction{
			Presence: Sigmoid(cur[i]),
			Row:      clamp01(cur[n+i]),
			Col:      clamp01(cur[2*n+i]),
		}
	}
	sp.End()
	s.obs.patches.Add(float64(n))
	s.obs.batchSeconds.Observe(time.Since(start).Seconds())
	return preds
}

// convForward lowers one conv stage: im2col gathers every receptive
// field column-wise, then one GEMM computes all output channels for
// the whole batch. Column index is (sample, out-row, out-col); row
// index is (in-channel, kernel-row, kernel-col) — the reference
// layer's summation order.
func (s *InferSession) convForward(op *planOp, n int, src, dst []float64, parent *obs.Span) {
	cv := op.conv
	k := op.c * cv.K * cv.K
	patchPix := op.oh * op.ow
	cols := n * patchPix
	ic2 := parent.Start("ml.im2col")
	col := s.col[:k*cols]
	rowBase := 0
	for ic := 0; ic < op.c; ic++ {
		for a := 0; a < cv.K; a++ {
			for b := 0; b < cv.K; b++ {
				for smp := 0; smp < n; smp++ {
					srcBase := ((ic*n+smp)*op.h+a)*op.w + b
					dstBase := rowBase + smp*patchPix
					for i := 0; i < op.oh; i++ {
						copy(col[dstBase+i*op.ow:dstBase+(i+1)*op.ow],
							src[srcBase+i*op.w:srcBase+i*op.w+op.ow])
					}
				}
				rowBase += cols
			}
		}
	}
	ic2.End()
	g := parent.Start("ml.gemm")
	fillRows(op.oc, cols, cv.B, dst)
	gemmAcc(op.oc, cols, k, cv.W, col, dst)
	g.End()
}

// poolForward is the 2×2 stride-2 max pool over channel-major
// activations, with the reference layer's exact comparison order.
func poolForward(op *planOp, n int, src, dst []float64) {
	di := 0
	for c := 0; c < op.c; c++ {
		for smp := 0; smp < n; smp++ {
			base := (c*n + smp) * op.h * op.w
			for i := 0; i < op.oh; i++ {
				for j := 0; j < op.ow; j++ {
					best := math.Inf(-1)
					for a := 0; a < 2; a++ {
						row := src[base+(2*i+a)*op.w+2*j:]
						for b := 0; b < 2; b++ {
							if v := row[b]; v > best {
								best = v
							}
						}
					}
					dst[di] = best
					di++
				}
			}
		}
	}
}

// gatherForward transposes channel-major (C,N,h,w) activations into
// the feature-major (C·h·w, N) matrix the dense GEMM consumes, with
// feature order (c, i, j) — the reference Flatten's layout.
func gatherForward(op *planOp, n int, src, dst []float64) {
	hw := op.h * op.w
	for c := 0; c < op.c; c++ {
		for smp := 0; smp < n; smp++ {
			srcBase := (c*n + smp) * hw
			for p := 0; p < hw; p++ {
				dst[(c*hw+p)*n+smp] = src[srcBase+p]
			}
		}
	}
}

// fieldMoments is one channel's standardization statistics.
type fieldMoments struct{ mean, std float64 }

// fieldStats computes the mean and population standard deviation of
// data in a single pass (Welford's algorithm) — the feature-scaling
// statistics of §5.4 without the extra sweep or the field copy.
func fieldStats(data []float32) fieldMoments {
	var m, m2 float64
	for i, v := range data {
		x := float64(v)
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(data) == 0 {
		return fieldMoments{}
	}
	return fieldMoments{mean: m, std: math.Sqrt(m2 / float64(len(data)))}
}

// standardizeRow writes (src-mean)/std into dst through a float32
// round-trip — the same per-element rounding grid.Field.Standardize
// applies — so engine and reference activations are bit-identical.
func standardizeRow(dst []float64, src []float32, mean, std float64) {
	dst = dst[:len(src)]
	for j, v := range src {
		dst[j] = float64(float32((float64(v) - mean) / std))
	}
}

// loadPatch fills dst — one (C,H,W) patch tensor — from the raw
// channel fields through the shared standardization: row-slice copies,
// no intermediate field clone or per-element accessor calls.
func loadPatch(dst []float64, chF []*grid.Field, stats []fieldMoments, row0, col0, patchH, patchW int) {
	hw := patchH * patchW
	for ci, f := range chF {
		mean, std := stats[ci].mean, stats[ci].std
		d := dst[ci*hw : (ci+1)*hw]
		if std == 0 {
			for i := range d {
				d[i] = 0
			}
			continue
		}
		g := f.Grid
		for r := 0; r < patchH; r++ {
			base := g.Index(row0+r, col0)
			standardizeRow(d[r*patchW:(r+1)*patchW], f.Data[base:base+patchW], mean, std)
		}
	}
}

// loadPatchRange fills the session input with patches [lo,hi) of the
// standardized channel fields — the batched preprocessing stage:
// values move straight from the raw field rows into the (C,N,H,W)
// batch tensor through the shared float32 standardization.
func (s *InferSession) loadPatchRange(chF []*grid.Field, stats []fieldMoments, nJ, lo, hi int) {
	p := s.plan
	n := hi - lo
	s.ensure(n)
	hw := p.inH * p.inW
	for ci, f := range chF {
		mean, std := stats[ci].mean, stats[ci].std
		g := f.Grid
		for pi := lo; pi < hi; pi++ {
			row0 := (pi / nJ) * p.inH
			col0 := (pi % nJ) * p.inW
			dst := s.actA[(ci*n+(pi-lo))*hw : (ci*n+(pi-lo)+1)*hw]
			if std == 0 {
				for i := range dst {
					dst[i] = 0
				}
				continue
			}
			for r := 0; r < p.inH; r++ {
				base := g.Index(row0+r, col0)
				standardizeRow(dst[r*p.inW:(r+1)*p.inW], f.Data[base:base+p.inW], mean, std)
			}
		}
	}
}

// --- engine: the session pool -------------------------------------------

// engine is a Localizer's session pool: up to Params.Workers compiled
// sessions shared by concurrent patch sweeps. Sessions are created on
// demand and reused LIFO; acquire blocks when all are busy, which is
// deadlock-free because every holder returns its session after one
// bounded batch.
//
// The plan pointer is atomic so SwapWeights can publish a freshly
// lowered plan while sweeps are in flight: a session binds the current
// plan at acquire time and keeps it for its whole batch, so a batch
// never mixes weight generations, while every batch acquired after the
// swap runs the new weights.
type engine struct {
	plan atomic.Pointer[inferPlan]
	p    Params
	obs  *inferObs

	mu      sync.Mutex
	cond    *sync.Cond
	free    []*InferSession
	created int
}

func newEngine(l *Localizer, p Params) (*engine, error) {
	p = p.withDefaults()
	plan, err := lower(l.Net, l.PatchH, l.PatchW)
	if err != nil {
		return nil, err
	}
	e := &engine{p: p, obs: newInferObs(p)}
	e.plan.Store(plan)
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

func (e *engine) acquire() *InferSession {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if n := len(e.free); n > 0 {
			s := e.free[n-1]
			e.free = e.free[:n-1]
			s.plan = e.plan.Load()
			s.ensure(0)
			return s
		}
		if e.created < e.p.Workers {
			e.created++
			s := &InferSession{plan: e.plan.Load(), obs: e.obs}
			s.ensure(e.p.MaxBatch)
			return s
		}
		e.cond.Wait()
	}
}

func (e *engine) release(s *InferSession) {
	e.mu.Lock()
	e.free = append(e.free, s)
	e.mu.Unlock()
	e.cond.Signal()
}

// detect is the batched, parallel patch sweep: standardization
// statistics are computed once per channel, the patch list is split
// across the session pool, and every chunk runs as one PredictBatch.
// Per-patch results are written into slots indexed by patch, so the
// pre-sort detection order — and every floating-point operation within
// a patch — matches the reference path exactly.
func (e *engine) detect(l *Localizer, fields map[string]*grid.Field, g grid.Grid, threshold float64) ([]Detection, error) {
	chF, stats, err := prepFields(fields, l.PatchH, l.PatchW)
	if err != nil {
		return nil, err
	}
	fg := chF[0].Grid
	nJ := fg.NLon / l.PatchW
	total := (fg.NLat / l.PatchH) * nJ
	slots := make([]Detection, total)
	valid := make([]bool, total)
	sweep := func(lo, hi int) {
		s := e.acquire()
		defer e.release(s)
		s.loadPatchRange(chF, stats, nJ, lo, hi)
		for i, pr := range s.forward(hi - lo) {
			if pr.Presence < threshold {
				continue
			}
			pi := lo + i
			slots[pi] = georeference(g, (pi/nJ)*l.PatchH, (pi%nJ)*l.PatchW, l.PatchH, l.PatchW, pr)
			valid[pi] = true
		}
	}
	if chunks := min(e.p.Workers, total); chunks <= 1 {
		sweep(0, total)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < chunks; w++ {
			lo, hi := total*w/chunks, total*(w+1)/chunks
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sweep(lo, hi)
			}()
		}
		wg.Wait()
	}
	var out []Detection
	for pi, ok := range valid {
		if ok {
			out = append(out, slots[pi])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}
