package cubeserver

// wire.go is the v2 wire protocol: length-prefixed little-endian
// binary framing with a hand-rolled codec for Request and Response.
// The v1 protocol (one gob stream per connection) spends most of its
// time in reflection and per-value encoding; v2 writes bulk []float64
// and [][]float32 payloads as raw contiguous byte blocks via
// math.Float64bits/Float32bits loops into pooled buffers, so encode
// and decode run at near-memcpy speed with no reflection and no
// steady-state allocation on the framing path.
//
// Frame layout (all integers little-endian):
//
//	offset 0  u32  payload length N (bytes after this field)
//	offset 4  u8   frame type (1 = request, 2 = response)
//	offset 5  u64  request ID (echoed verbatim in the response frame)
//	offset 13 ...  body (codec below), N-9 bytes
//
// Every frame carries a request ID, so N requests can be in flight on
// one connection at once: the mux client (mux.go) pipelines them and
// the server answers in completion order. A v2 session is opened by
// the 4-byte magic {0x00,'C','W','2'}; 0x00 can never begin a gob
// stream (gob's leading byte-count uvarint is nonzero), which is what
// makes the server's codec sniff unambiguous (see negotiation in
// cubeserver.go).
//
// The decoder is fuzz-hardened: every length field is validated
// against the bytes actually remaining in the frame before any
// allocation, so truncated, garbage or adversarial frames produce an
// error, never a panic or an outsized allocation.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/datacube"
)

// wireMagic opens a v2 session. The leading 0x00 is unreachable as the
// first byte of a gob stream, so a server can sniff the codec from one
// byte.
var wireMagic = [4]byte{0x00, 'C', 'W', '2'}

const (
	frameRequest  byte = 1
	frameResponse byte = 2

	// frameMetaLen is the frame-type byte plus the request ID.
	frameMetaLen = 1 + 8

	// maxFrameBytes bounds a single frame (1 GiB). Anything larger is
	// protocol garbage: the guard keeps a corrupt length field from
	// turning into a giant allocation.
	maxFrameBytes = 1 << 30
)

var (
	errFrameTruncated = errors.New("cubeserver: truncated v2 frame")
	errFrameOversized = errors.New("cubeserver: v2 frame exceeds size limit")
)

// frameBufPool recycles encode/decode scratch across requests. Buffers
// above 64 MiB are dropped rather than pooled so one giant export does
// not pin its buffer forever.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() []byte { return (*frameBufPool.Get().(*[]byte))[:0] }

func putBuf(b []byte) {
	if cap(b) > 64<<20 {
		return
	}
	frameBufPool.Put(&b)
}

// grow extends b by n bytes and returns the extended slice; the new
// bytes are uninitialized and must be overwritten by the caller.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, max(2*cap(b), len(b)+n))
	copy(nb, b)
	return nb
}

// ── append-style encoders ────────────────────────────────────────────

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendInt(b []byte, v int) []byte { return appendU64(b, uint64(int64(v))) }

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendStrs(b []byte, ss []string) []byte {
	b = appendU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

// appendF64s writes the slice as one raw contiguous block — the
// near-memcpy path the bulk partials travel on.
func appendF64s(b []byte, v []float64) []byte {
	b = appendU32(b, uint32(len(v)))
	off := len(b)
	b = grow(b, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(b[off+8*i:], math.Float64bits(f))
	}
	return b
}

// appendF32Row writes one row of cube data as a raw block.
func appendF32Row(b []byte, row []float32) []byte {
	b = appendU32(b, uint32(len(row)))
	off := len(b)
	b = grow(b, 4*len(row))
	for i, f := range row {
		binary.LittleEndian.PutUint32(b[off+4*i:], math.Float32bits(f))
	}
	return b
}

func appendRows(b []byte, rows [][]float32) []byte {
	b = appendU32(b, uint32(len(rows)))
	for _, row := range rows {
		b = appendF32Row(b, row)
	}
	return b
}

func appendDims(b []byte, dims []datacube.Dimension) []byte {
	b = appendU32(b, uint32(len(dims)))
	for _, d := range dims {
		b = appendStr(b, d.Name)
		b = appendInt(b, d.Size)
	}
	return b
}

// ── bounds-checked decoder ───────────────────────────────────────────

// wireDec walks a frame body; the first failed read latches err and
// every later read returns zero values, so call sites stay linear.
type wireDec struct {
	b   []byte
	off int
	err error
}

func (d *wireDec) fail() {
	if d.err == nil {
		d.err = errFrameTruncated
	}
}

func (d *wireDec) remaining() int { return len(d.b) - d.off }

func (d *wireDec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wireDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wireDec) int() int { return int(int64(d.u64())) }

func (d *wireDec) i64() int64 { return int64(d.u64()) }

func (d *wireDec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.remaining() < 1 {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *wireDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *wireDec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n < 0 || n > d.remaining() {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// count reads a u32 element count and validates it against the bytes
// remaining at minBytes per element, so a corrupt count can never
// drive an outsized allocation.
func (d *wireDec) count(minBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (minBytes > 0 && n > d.remaining()/minBytes) {
		d.fail()
		return 0
	}
	return n
}

func (d *wireDec) strs() []string {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *wireDec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off+8*i:]))
	}
	d.off += 8 * n
	return out
}

func (d *wireDec) rows() [][]float32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	// Pre-scan the row headers to size one contiguous backing block, so
	// a bulk payload costs two allocations instead of one per row.
	total, off := 0, d.off
	for i := 0; i < n; i++ {
		if len(d.b)-off < 4 {
			d.fail()
			return nil
		}
		c := int(binary.LittleEndian.Uint32(d.b[off:]))
		off += 4
		if c > (len(d.b)-off)/4 {
			d.fail()
			return nil
		}
		off += 4 * c
		total += c
	}
	backing := make([]float32, total)
	out := make([][]float32, n)
	used := 0
	for i := range out {
		c := int(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
		if c == 0 {
			continue // zero-length rows decode nil, matching the gob stream
		}
		row := backing[used : used+c : used+c]
		used += c
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off+4*j:]))
		}
		d.off += 4 * c
		out[i] = row
	}
	return out
}

func (d *wireDec) dims() []datacube.Dimension {
	n := d.count(12)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]datacube.Dimension, n)
	for i := range out {
		out[i].Name = d.str()
		out[i].Size = d.int()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// ── Request codec ────────────────────────────────────────────────────

// AppendRequestV2 appends the v2 body encoding of req to b and returns
// the extended slice. Exported (with DecodeRequestV2 and the Response
// pair) for the root wire-codec benchmark; everything inside the
// package goes through frames.
func AppendRequestV2(b []byte, req *Request) []byte {
	b = appendStr(b, req.Op)
	b = appendStr(b, req.CubeID)
	b = appendStr(b, req.OtherID)
	b = appendStr(b, req.Var)
	b = appendStr(b, req.ImplicitDim)
	b = appendStr(b, req.Expr)
	b = appendStr(b, req.RowOp)
	b = appendStr(b, req.Key)
	b = appendStr(b, req.Value)
	b = appendStr(b, req.Path)
	b = appendInt(b, req.Group)
	b = appendInt(b, req.Lo)
	b = appendInt(b, req.Hi)
	b = appendInt(b, req.Row)
	b = appendInt(b, req.Shard)
	b = appendInt(b, req.Shards)
	b = appendF64s(b, req.Params)
	b = appendStrs(b, req.Paths)
	b = appendRows(b, req.Values)
	b = appendDims(b, req.Dims)
	b = appendU32(b, uint32(len(req.Pipeline)))
	for i := range req.Pipeline {
		st := &req.Pipeline[i]
		b = appendStr(b, st.Op)
		b = appendStr(b, st.Expr)
		b = appendStr(b, st.RowOp)
		b = appendStr(b, st.OtherID)
		b = appendF64s(b, st.Params)
		b = appendInt(b, st.Group)
		b = appendInt(b, st.Lo)
		b = appendInt(b, st.Hi)
		b = appendBool(b, st.Keep)
		b = appendF64(b, st.Tolerance)
	}
	return b
}

// DecodeRequestV2 decodes a v2 request body into req. All slices are
// freshly allocated (never aliased into b or recycled), so a
// dispatcher may retain them — the residency dispatcher keeps requests
// as rebuild recipes — while the caller pools both b and req.
func DecodeRequestV2(b []byte, req *Request) error {
	d := &wireDec{b: b}
	req.Op = d.str()
	req.CubeID = d.str()
	req.OtherID = d.str()
	req.Var = d.str()
	req.ImplicitDim = d.str()
	req.Expr = d.str()
	req.RowOp = d.str()
	req.Key = d.str()
	req.Value = d.str()
	req.Path = d.str()
	req.Group = d.int()
	req.Lo = d.int()
	req.Hi = d.int()
	req.Row = d.int()
	req.Shard = d.int()
	req.Shards = d.int()
	req.Params = d.f64s()
	req.Paths = d.strs()
	req.Values = d.rows()
	req.Dims = d.dims()
	req.Pipeline = nil
	n := d.count(47) // min encoded PipelineStep: 4 strings + params count + 3 ints + bool + tolerance
	if d.err == nil && n > 0 {
		req.Pipeline = make([]PipelineStep, n)
		for i := range req.Pipeline {
			st := &req.Pipeline[i]
			st.Op = d.str()
			st.Expr = d.str()
			st.RowOp = d.str()
			st.OtherID = d.str()
			st.Params = d.f64s()
			st.Group = d.int()
			st.Lo = d.int()
			st.Hi = d.int()
			st.Keep = d.bool()
			st.Tolerance = d.f64()
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("cubeserver: %d trailing bytes after v2 request", d.remaining())
	}
	return nil
}

// ── Response codec ───────────────────────────────────────────────────

// AppendResponseV2 appends the v2 body encoding of resp to b.
func AppendResponseV2(b []byte, resp *Response) []byte {
	b = appendStr(b, resp.Err)
	b = appendStr(b, resp.ErrCode)
	b = appendStr(b, resp.Value)
	b = appendF64(b, resp.Scalar)
	b = appendBool(b, resp.Found)
	b = appendI64(b, resp.ResidentTotal)
	b = appendI64(b, resp.Stats.FileReads)
	b = appendI64(b, resp.Stats.CellsProcessed)
	b = appendI64(b, resp.Stats.Ops)
	b = appendI64(b, resp.Stats.FragmentTasks)
	b = appendStr(b, resp.Shape.CubeID)
	b = appendStr(b, resp.Shape.Measure)
	b = appendStr(b, resp.Shape.ImplicitName)
	b = appendInt(b, resp.Shape.Rows)
	b = appendInt(b, resp.Shape.ImplicitLen)
	b = appendInt(b, resp.Shape.Fragments)
	b = appendDims(b, resp.Shape.ExplicitDims)
	b = appendF64s(b, resp.Partials)
	b = appendStrs(b, resp.IDs)
	b = appendRows(b, resp.Values)
	// Maps carry a presence byte: gob transmits an empty non-nil map but
	// omits a nil one, and the decoder mirrors that distinction.
	b = appendBool(b, resp.Resident != nil)
	if resp.Resident != nil {
		b = appendU32(b, uint32(len(resp.Resident)))
		for id, bytes := range resp.Resident {
			b = appendStr(b, id)
			b = appendI64(b, bytes)
		}
	}
	return b
}

// DecodeResponseV2 decodes a v2 response body into resp. Mirroring
// gob's omitted-zero-value semantics, empty slices and maps decode as
// nil, so responses round-trip reflect.DeepEqual across either codec.
func DecodeResponseV2(b []byte, resp *Response) error {
	d := &wireDec{b: b}
	resp.Err = d.str()
	resp.ErrCode = d.str()
	resp.Value = d.str()
	resp.Scalar = d.f64()
	resp.Found = d.bool()
	resp.ResidentTotal = d.i64()
	resp.Stats.FileReads = d.i64()
	resp.Stats.CellsProcessed = d.i64()
	resp.Stats.Ops = d.i64()
	resp.Stats.FragmentTasks = d.i64()
	resp.Shape.CubeID = d.str()
	resp.Shape.Measure = d.str()
	resp.Shape.ImplicitName = d.str()
	resp.Shape.Rows = d.int()
	resp.Shape.ImplicitLen = d.int()
	resp.Shape.Fragments = d.int()
	resp.Shape.ExplicitDims = d.dims()
	resp.Partials = d.f64s()
	resp.IDs = d.strs()
	resp.Values = d.rows()
	resp.Resident = nil
	if d.bool() {
		n := d.count(12)
		if d.err == nil {
			resp.Resident = make(map[string]int64, n)
			for i := 0; i < n; i++ {
				id := d.str()
				bytes := d.i64()
				if d.err != nil {
					resp.Resident = nil
					break
				}
				resp.Resident[id] = bytes
			}
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("cubeserver: %d trailing bytes after v2 response", d.remaining())
	}
	return nil
}

// ── framing ──────────────────────────────────────────────────────────

// beginFrame resets b to a frame header (length placeholder, type,
// request ID); the caller appends the body and calls finishFrame.
func beginFrame(b []byte, ftype byte, id uint64) []byte {
	b = append(b[:0], 0, 0, 0, 0, ftype)
	return appendU64(b, id)
}

// finishFrame patches the length prefix once the body is in place.
func finishFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	return b
}

// encodeRequestFrame builds a complete request frame in buf.
func encodeRequestFrame(buf []byte, id uint64, req *Request) []byte {
	return finishFrame(AppendRequestV2(beginFrame(buf, frameRequest, id), req))
}

// encodeResponseFrame builds a complete response frame in buf.
func encodeResponseFrame(buf []byte, id uint64, resp *Response) []byte {
	return finishFrame(AppendResponseV2(beginFrame(buf, frameResponse, id), resp))
}

// readFrame reads one frame from r into a pooled buffer, returning the
// frame type, request ID and body (valid until putBuf(frame)). consumed
// reports whether any bytes were read before the error — a deadline
// that fires with consumed=false left the stream intact, so an idle
// server loop may safely retry the read.
func readFrame(r interface{ Read([]byte) (int, error) }) (ftype byte, id uint64, frame, body []byte, consumed bool, err error) {
	var hdr [4]byte
	n, err := readFull(r, hdr[:])
	if err != nil {
		return 0, 0, nil, nil, n > 0, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size < frameMetaLen {
		return 0, 0, nil, nil, true, errFrameTruncated
	}
	if size > maxFrameBytes {
		return 0, 0, nil, nil, true, errFrameOversized
	}
	// Grow the buffer as bytes actually arrive (1 MiB steps) instead of
	// trusting the header: a peer claiming a huge frame and sending
	// nothing costs one chunk, not a gigabyte.
	frame = getBuf()
	for remaining := int(size); remaining > 0; {
		chunk := min(remaining, 1<<20)
		off := len(frame)
		frame = grow(frame, chunk)
		if _, err := readFull(r, frame[off:]); err != nil {
			putBuf(frame)
			return 0, 0, nil, nil, true, err
		}
		remaining -= chunk
	}
	return frame[0], binary.LittleEndian.Uint64(frame[1:]), frame, frame[frameMetaLen:], true, nil
}

// readFull is io.ReadFull without the io.EOF→ErrUnexpectedEOF
// remapping on the first byte, so a clean hangup between frames stays
// distinguishable from a torn frame.
func readFull(r interface{ Read([]byte) (int, error) }, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
