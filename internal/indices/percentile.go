package indices

import (
	"fmt"
	"math/rand"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

// This file implements the ETCCDI percentile-based extreme indices the
// paper cites for its wave definitions ("Indices of daily temperature
// and precipitation extremes", ref [31]): TX90p, TN10p, WSDI and CSDI.
// Unlike the fixed +5 K threshold of §5.3, these compare each day
// against a calendar-day percentile climatology estimated from a
// historical simulation period.

// mixSeed derives the per-year noise seed. The previous expression,
// seed ^ int64(year)*99991, degenerated to the raw seed for year 0 and
// left adjacent years correlated in the low bits; the SplitMix64
// finalizer scrambles every bit of both inputs.
func mixSeed(seed int64, year int) int64 {
	z := uint64(seed) + (uint64(year)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// yearNoise precomputes one historical year's AR(1) day-offset stream
// (coarse weather noise shared by all cells of that day). Computing it
// up front keeps all RNG use serial, which is what makes the
// fragment-parallel cube generator race-free.
func yearNoise(seed int64, year, daysPerYear int) []float64 {
	rng := rand.New(rand.NewSource(mixSeed(seed, year)))
	offsets := make([]float64, daysPerYear)
	for d := 1; d < daysPerYear; d++ {
		offsets[d] = 0.7*offsets[d-1] + rng.NormFloat64()*1.2
	}
	return offsets
}

// PercentileBaseline holds calendar-day percentile climatologies.
type PercentileBaseline struct {
	// TX90 is the 90th percentile of daily maximum temperature per cell
	// and day of year.
	TX90 *datacube.Cube
	// TN10 is the 10th percentile of daily minimum temperature.
	TN10 *datacube.Cube
	// Grid is the spatial layout; DaysPerYear the calendar length.
	Grid        grid.Grid
	DaysPerYear int
	// HistYears is the number of historical years the estimate used.
	HistYears int
}

// BuildPercentileBaseline estimates the percentile climatology by
// running histYears of the historical-scenario model (weather noise
// but no seeded events, the "20-year period" analogue) and reducing
// across years per calendar day with the quantile operator.
func BuildPercentileBaseline(e *datacube.Engine, g grid.Grid, daysPerYear, histYears int, seed int64) (*PercentileBaseline, error) {
	if histYears < 2 {
		return nil, fmt.Errorf("indices: need at least 2 historical years, got %d", histYears)
	}
	// Generate the historical daily extrema directly into year cubes.
	// Each year uses an independent deterministic noise stream,
	// precomputed serially by yearNoise: the generator closure handed to
	// NewCubeFromFunc runs concurrently across fragments on different
	// I/O servers and therefore must not touch a shared *rand.Rand.
	mkYear := func(year int, daily func(row, day int) float32) (*datacube.Cube, error) {
		offsets := yearNoise(seed, year, daysPerYear)
		return e.NewCubeFromFunc("hist",
			[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
			datacube.Dimension{Name: "time", Size: daysPerYear},
			func(row, day int) float32 {
				return daily(row, day) + float32(offsets[day])
			})
	}

	build := func(q float64, extremum func(row, day int) float32, measure string) (*datacube.Cube, error) {
		var years []*datacube.Cube
		defer func() {
			for _, y := range years {
				_ = y.Delete()
			}
		}()
		for y := 0; y < histYears; y++ {
			c, err := mkYear(y, extremum)
			if err != nil {
				return nil, err
			}
			years = append(years, c)
		}
		stacked, err := e.Concat(years)
		if err != nil {
			return nil, err
		}
		defer stacked.Delete()
		pct, err := stacked.ReduceStride("quantile", daysPerYear, q)
		if err != nil {
			return nil, err
		}
		pct.SetMeasure(measure)
		pct.SetMeta("role", "percentile_baseline")
		pct.SetMeta("quantile", fmt.Sprintf("%g", q))
		return pct, nil
	}

	maxD := maxDiurnal()
	tx90, err := build(0.9, func(row, day int) float32 {
		i, j := g.RowCol(row)
		return float32(esm.Climatology(g, i, j, day, daysPerYear) + maxD)
	}, "TX90_CLIM")
	if err != nil {
		return nil, err
	}
	minD := minDiurnal()
	tn10, err := build(0.1, func(row, day int) float32 {
		i, j := g.RowCol(row)
		return float32(esm.Climatology(g, i, j, day, daysPerYear) + minD)
	}, "TN10_CLIM")
	if err != nil {
		return nil, err
	}
	return &PercentileBaseline{TX90: tx90, TN10: tn10, Grid: g, DaysPerYear: daysPerYear, HistYears: histYears}, nil
}

// PercentileResult bundles the ETCCDI indices of one year.
type PercentileResult struct {
	// TX90p is the fraction of days with daily max above the 90th
	// percentile climatology (per cell).
	TX90p *datacube.Cube
	// TN10p is the fraction of days with daily min below the 10th
	// percentile climatology.
	TN10p *datacube.Cube
	// WSDI is the warm-spell duration index: days in spells of ≥6
	// consecutive days above the 90th percentile.
	WSDI *datacube.Cube
	// CSDI is the cold-spell duration index (mirror of WSDI).
	CSDI *datacube.Cube
}

// ETCCDI computes the percentile indices from a sub-daily temperature
// cube, following the standard definitions (6-day minimum spells). Like
// wavePipeline it defaults to fused execution — one multi-output pass
// per temperature side, with the daily-extremum/anomaly prefix kept in
// scratch — and p.Eager selects the operator-at-a-time original.
func ETCCDI(temp *datacube.Cube, b *PercentileBaseline, p Params) (*PercentileResult, error) {
	p = p.Defaults()
	if temp.ImplicitLen() != p.StepsPerDay*p.DaysPerYear {
		return nil, fmt.Errorf("indices: input has %d samples, want %d days × %d steps",
			temp.ImplicitLen(), p.DaysPerYear, p.StepsPerDay)
	}
	if b.TX90.ImplicitLen() != p.DaysPerYear {
		return nil, fmt.Errorf("indices: percentile baseline has %d days, want %d", b.TX90.ImplicitLen(), p.DaysPerYear)
	}
	if p.Eager {
		return etccdiEager(temp, b, p)
	}
	return etccdiFused(temp, b, p)
}

// etccdiFused runs each temperature side (warm vs TX90, cold vs TN10)
// as one fused two-output pass.
func etccdiFused(temp *datacube.Cube, b *PercentileBaseline, p Params) (*PercentileResult, error) {
	out := &PercentileResult{}
	side := func(extremum string, pct *datacube.Cube, countOp, runsOp string) (frac, sdi *datacube.Cube, err error) {
		outs, err := temp.Lazy().
			ReduceGroup(extremum, p.StepsPerDay).
			Intercube(pct, "sub").
			Tolerance(p.Tolerance).
			ExecuteBranches(
				datacube.Branch().Reduce(countOp, 0).Apply(fmt.Sprintf("x/%d", p.DaysPerYear)),
				datacube.Branch().Reduce(runsOp, 0, float64(p.MinDays)),
			)
		if err != nil {
			return nil, nil, err
		}
		return outs[0], outs[1], nil
	}
	var err error
	if out.TX90p, out.WSDI, err = side("max", b.TX90, "count_above", "days_in_runs_above"); err != nil {
		return nil, err
	}
	out.TX90p.SetMeta("index", "TX90p")
	out.WSDI.SetMeta("index", "WSDI")
	if out.TN10p, out.CSDI, err = side("min", b.TN10, "count_below", "days_in_runs_below"); err != nil {
		out.Delete()
		return nil, err
	}
	out.TN10p.SetMeta("index", "TN10p")
	out.CSDI.SetMeta("index", "CSDI")
	return out, nil
}

// etccdiEager is the original operator-at-a-time chain, retained as the
// fused path's cross-check oracle.
func etccdiEager(temp *datacube.Cube, b *PercentileBaseline, p Params) (*PercentileResult, error) {
	out := &PercentileResult{}
	// warm side: daily max vs TX90
	dmax, err := temp.ReduceGroup("max", p.StepsPerDay)
	if err != nil {
		return nil, err
	}
	defer dmax.Delete()
	warmAnom, err := dmax.Intercube(b.TX90, "sub")
	if err != nil {
		return nil, err
	}
	defer warmAnom.Delete()
	warmDays, err := warmAnom.Reduce("count_above", 0)
	if err != nil {
		return nil, err
	}
	if out.TX90p, err = warmDays.Apply(fmt.Sprintf("x/%d", p.DaysPerYear)); err != nil {
		return nil, err
	}
	_ = warmDays.Delete()
	out.TX90p.SetMeta("index", "TX90p")
	if out.WSDI, err = warmAnom.Reduce("days_in_runs_above", 0, float64(p.MinDays)); err != nil {
		return nil, err
	}
	out.WSDI.SetMeta("index", "WSDI")

	// cold side: daily min vs TN10
	dmin, err := temp.ReduceGroup("min", p.StepsPerDay)
	if err != nil {
		return nil, err
	}
	defer dmin.Delete()
	coldAnom, err := dmin.Intercube(b.TN10, "sub")
	if err != nil {
		return nil, err
	}
	defer coldAnom.Delete()
	coldDays, err := coldAnom.Reduce("count_below", 0)
	if err != nil {
		return nil, err
	}
	if out.TN10p, err = coldDays.Apply(fmt.Sprintf("x/%d", p.DaysPerYear)); err != nil {
		return nil, err
	}
	_ = coldDays.Delete()
	out.TN10p.SetMeta("index", "TN10p")
	if out.CSDI, err = coldAnom.Reduce("days_in_runs_below", 0, float64(p.MinDays)); err != nil {
		return nil, err
	}
	out.CSDI.SetMeta("index", "CSDI")
	return out, nil
}

// Delete frees all result cubes.
func (r *PercentileResult) Delete() {
	for _, c := range []*datacube.Cube{r.TX90p, r.TN10p, r.WSDI, r.CSDI} {
		if c != nil {
			_ = c.Delete()
		}
	}
}
