package cubecluster

import (
	"reflect"
	"testing"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

// TestClusterOverTCP rebuilds the equivalence check with real
// cubeserver TCP replicas behind DialTransport, and additionally
// serves the coordinator itself over TCP — client → coordinator →
// shards, all gob. This pins the new wire fields (Dims, Values,
// Partials, ErrCode) through actual encoding.
func TestClusterOverTCP(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 4, 16)
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "aggtrailing", RowOp: "max"},
		{Op: "subsetrows", Lo: 1, Hi: 7},
		{Op: "aggrows", RowOp: "avg"},
	}
	want := engineRef(t, []string{path}, pipe)

	const shards = 2
	transports := make([][]Transport, shards)
	for s := 0; s < shards; s++ {
		engine := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
		srv, err := cubeserver.Serve("127.0.0.1:0", engine)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := DialTransport(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		transports[s] = []Transport{tr}
		t.Cleanup(func() { srv.Close(); engine.Close() })
	}
	cl, err := New(Config{SpoolDir: t.TempDir()}, transports)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Front the coordinator with its own TCP server and drive it with a
	// plain cubeserver client.
	front, err := cubeserver.ServeDispatcher("127.0.0.1:0", cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	client, err := cubeserver.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	out, err := cube.Pipeline(pipe...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Values()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TCP cluster diverged:\ngot  %v\nwant %v", got, want)
	}
}
