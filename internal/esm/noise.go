package esm

import (
	"repro/internal/grid"
)

// noiseField generates smooth, temporally correlated weather noise: a
// coarse random field is evolved as an AR(1) process day by day and
// bilinearly interpolated to the model grid. This gives synoptic-scale
// spatial structure (weather systems) rather than white pixel noise.
type noiseField struct {
	coarse grid.Grid
	target grid.Grid
	state  *grid.Field
	rng    *prng
	// rho is the day-to-day autocorrelation; sigma the innovation
	// standard deviation.
	rho, sigma float64
}

func newNoiseField(target grid.Grid, rng *prng, rho, sigma float64) *noiseField {
	coarse := grid.Grid{NLat: maxInt(target.NLat/6, 4), NLon: maxInt(target.NLon/6, 8)}
	n := &noiseField{
		coarse: coarse,
		target: target,
		state:  grid.NewField(coarse),
		rng:    rng,
		rho:    rho,
		sigma:  sigma,
	}
	// spin up to the stationary distribution
	for i := range n.state.Data {
		n.state.Data[i] = float32(rng.NormFloat64() * sigma / (1 - rho))
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// step evolves the coarse state one day and returns the interpolated
// full-resolution field.
func (n *noiseField) step() *grid.Field {
	for i := range n.state.Data {
		n.state.Data[i] = float32(n.rho*float64(n.state.Data[i]) + n.rng.NormFloat64()*n.sigma)
	}
	return n.state.Regrid(n.target)
}
