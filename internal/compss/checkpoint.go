package compss

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpointer persists completed task results so a failed workflow run
// can be recovered "from the last checkpointed task" (Vergés et al.
// 2023, cited in the paper's §4.2.1). Implementations must be safe for
// concurrent use.
type Checkpointer interface {
	// Record stores the outputs of the invocation of task name with the
	// given deterministic sequence number.
	Record(name string, seq int, outs []any) error
	// Lookup returns previously recorded outputs, if any.
	Lookup(name string, seq int) ([]any, bool)
	// Flush forces buffered records to stable storage.
	Flush() error
}

// ckptRecord is the on-disk unit of the file checkpointer.
type ckptRecord struct {
	Name string
	Seq  int
	Outs []any
}

// FileCheckpointer is a gob-encoded append-only checkpoint log. Task
// output values must be gob-encodable (register concrete types with
// gob.Register); values that fail to encode are skipped silently so that
// checkpointing stays best-effort, never failing a healthy workflow.
type FileCheckpointer struct {
	mu   sync.Mutex
	path string
	f    *os.File
	enc  *gob.Encoder
	mem  map[string][]any
}

// OpenFileCheckpointer opens (or creates) the checkpoint log at path and
// loads any previously recorded results for replay.
func OpenFileCheckpointer(path string) (*FileCheckpointer, error) {
	c := &FileCheckpointer{path: path, mem: make(map[string][]any)}
	if f, err := os.Open(path); err == nil {
		dec := gob.NewDecoder(f)
		for {
			var rec ckptRecord
			if err := dec.Decode(&rec); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				// A torn tail write from a crashed run: keep what decoded.
				break
			}
			c.mem[ckptKey(rec.Name, rec.Seq)] = rec.Outs
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	c.enc = gob.NewEncoder(f)
	return c, nil
}

func ckptKey(name string, seq int) string { return fmt.Sprintf("%s/%d", name, seq) }

// Record implements Checkpointer.
func (c *FileCheckpointer) Record(name string, seq int, outs []any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := ckptKey(name, seq)
	if _, dup := c.mem[key]; dup {
		return nil
	}
	if c.enc == nil {
		return nil // a previous unencodable value poisoned the stream
	}
	if err := c.enc.Encode(ckptRecord{Name: name, Seq: seq, Outs: outs}); err != nil {
		// Unencodable outputs (e.g. values holding channels): skip rather
		// than fail the workflow. The gob stream may now be poisoned, so
		// disable further writes.
		c.enc = nil
		return nil
	}
	c.mem[key] = outs
	return nil
}

// Lookup implements Checkpointer.
func (c *FileCheckpointer) Lookup(name string, seq int) ([]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs, ok := c.mem[ckptKey(name, seq)]
	return outs, ok
}

// Flush implements Checkpointer.
func (c *FileCheckpointer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	return c.f.Sync()
}

// Close flushes and closes the underlying log file.
func (c *FileCheckpointer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Entries reports how many task results the checkpointer holds.
func (c *FileCheckpointer) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// MemCheckpointer is an in-memory Checkpointer for tests and for
// measuring checkpointing overhead without filesystem noise.
type MemCheckpointer struct {
	mu  sync.Mutex
	mem map[string][]any
}

// NewMemCheckpointer returns an empty in-memory checkpointer.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{mem: make(map[string][]any)}
}

// Record implements Checkpointer.
func (c *MemCheckpointer) Record(name string, seq int, outs []any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[ckptKey(name, seq)] = outs
	return nil
}

// Lookup implements Checkpointer.
func (c *MemCheckpointer) Lookup(name string, seq int) ([]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs, ok := c.mem[ckptKey(name, seq)]
	return outs, ok
}

// Flush implements Checkpointer.
func (c *MemCheckpointer) Flush() error { return nil }

// Entries reports how many task results the checkpointer holds.
func (c *MemCheckpointer) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
