// Package viz renders global fields as images and text, covering the
// workflow's final stage ("maps can be produced starting from the
// results stored on disk", §5.1 step 6; Figure 4 shows such a map for
// the Heat Wave Number indicator).
//
// Output formats are dependency-free: PGM (grayscale) and PPM (color)
// raster images, and fixed-width ASCII maps for terminals and logs.
package viz

import (
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/grid"
)

// Palette maps a normalized value in [0,1] to RGB.
type Palette func(v float64) (r, g, b uint8)

// Heat is a white→yellow→red→dark palette suited to wave-count maps.
func Heat(v float64) (uint8, uint8, uint8) {
	v = clamp01(v)
	switch {
	case v < 0.25:
		t := v / 0.25
		return 255, 255, uint8(255 * (1 - t)) // white → yellow
	case v < 0.6:
		t := (v - 0.25) / 0.35
		return 255, uint8(255 * (1 - t)), 0 // yellow → red
	default:
		t := (v - 0.6) / 0.4
		return uint8(255 * (1 - 0.6*t)), 0, 0 // red → dark red
	}
}

// Cool is a white→cyan→blue palette for cold-spell maps.
func Cool(v float64) (uint8, uint8, uint8) {
	v = clamp01(v)
	switch {
	case v < 0.5:
		t := v / 0.5
		return uint8(255 * (1 - t)), 255, 255
	default:
		t := (v - 0.5) / 0.5
		return 0, uint8(255 * (1 - t)), 255
	}
}

// Diverging is a blue→white→red palette for anomaly maps (0.5 = zero).
func Diverging(v float64) (uint8, uint8, uint8) {
	v = clamp01(v)
	if v < 0.5 {
		t := v / 0.5
		return uint8(255 * t), uint8(255 * t), 255
	}
	t := (v - 0.5) / 0.5
	return 255, uint8(255 * (1 - t)), uint8(255 * (1 - t))
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// normalize maps field values to [0,1] given explicit or data bounds.
func normalize(f *grid.Field, lo, hi float64) func(i, j int) float64 {
	if lo == hi {
		s := f.Statistics()
		lo, hi = s.Min, s.Max
		if lo == hi {
			hi = lo + 1
		}
	}
	span := hi - lo
	return func(i, j int) float64 {
		return clamp01((float64(f.At(i, j)) - lo) / span)
	}
}

// WritePGM renders the field as a binary 8-bit PGM image, north up.
// lo/hi set the value range mapped to black..white; pass lo==hi to
// auto-scale.
func WritePGM(path string, f *grid.Field, lo, hi float64) error {
	norm := normalize(f, lo, hi)
	g := f.Grid
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", g.NLon, g.NLat)
	buf := make([]byte, 0, g.Size())
	for i := g.NLat - 1; i >= 0; i-- { // north at top
		for j := 0; j < g.NLon; j++ {
			buf = append(buf, uint8(255*norm(i, j)))
		}
	}
	return os.WriteFile(path, append([]byte(b.String()), buf...), 0o644)
}

// WritePPM renders the field as a binary PPM image through a palette.
func WritePPM(path string, f *grid.Field, lo, hi float64, pal Palette) error {
	if pal == nil {
		pal = Heat
	}
	norm := normalize(f, lo, hi)
	g := f.Grid
	var b strings.Builder
	fmt.Fprintf(&b, "P6\n%d %d\n255\n", g.NLon, g.NLat)
	buf := make([]byte, 0, 3*g.Size())
	for i := g.NLat - 1; i >= 0; i-- {
		for j := 0; j < g.NLon; j++ {
			r, gg, bb := pal(norm(i, j))
			buf = append(buf, r, gg, bb)
		}
	}
	return os.WriteFile(path, append([]byte(b.String()), buf...), 0o644)
}

// asciiRamp orders glyphs from empty to dense.
const asciiRamp = " .:-=+*#%@"

// ASCIIMap renders the field as a text map of at most maxCols columns,
// north up, with a value legend. It is the quick-look rendering used in
// example binaries and logs.
func ASCIIMap(f *grid.Field, maxCols int) string {
	g := f.Grid
	if maxCols <= 0 {
		maxCols = 72
	}
	target := g
	view := f
	if g.NLon > maxCols {
		target = grid.Grid{NLat: maxInt(g.NLat*maxCols/g.NLon, 2), NLon: maxCols}
		view = f.Regrid(target)
	}
	s := view.Statistics()
	norm := normalize(view, s.Min, s.Max)
	var b strings.Builder
	for i := target.NLat - 1; i >= 0; i-- {
		for j := 0; j < target.NLon; j++ {
			idx := int(norm(i, j) * float64(len(asciiRamp)-1))
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "[min=%.3g max=%.3g mean=%.3g]\n", s.Min, s.Max, s.Mean)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Marker overlays a set of (lat, lon) points on an ASCII map, for
// geo-referenced TC detections.
type Marker struct {
	Lat, Lon float64
	Glyph    byte
}

// ASCIIMapWithMarkers renders like ASCIIMap then stamps markers.
func ASCIIMapWithMarkers(f *grid.Field, maxCols int, markers []Marker) string {
	base := ASCIIMap(f, maxCols)
	lines := strings.Split(base, "\n")
	if len(lines) < 2 {
		return base
	}
	nrows := len(lines) - 2 // last line is the legend, then trailing empty
	ncols := len(lines[0])
	for _, m := range markers {
		vg := grid.Grid{NLat: nrows, NLon: ncols}
		i, j := vg.CellOf(m.Lat, m.Lon)
		row := nrows - 1 - i
		if row < 0 || row >= nrows || j < 0 || j >= len(lines[row]) {
			continue
		}
		glyph := m.Glyph
		if glyph == 0 {
			glyph = 'O'
		}
		line := []byte(lines[row])
		line[j] = glyph
		lines[row] = string(line)
	}
	return strings.Join(lines, "\n")
}
