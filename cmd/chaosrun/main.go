// Command chaosrun is the chaos soak driver: it proves the workflow's
// recovery story end to end. It runs the climate workflow three times —
// once clean, once under a seeded fault mix that crashes the process
// right before a checkpoint write, and once more resuming from the
// checkpoint file — then verifies the resumed run recovered work from
// the checkpoint and reproduced the clean run's outputs byte for byte
// (modulo the run-scoped cube_id/provenance attributes NetCDF exports
// carry, the "history attribute" of real archives).
//
// Usage:
//
//	chaosrun -out ./chaos_out -years 2 -days 12 -seed 5 -chaos-seed 42
//
// -mode replica instead soaks the replicated control plane (DESIGN.md
// §13): a clean single-replica run vs a 3-replica run with executors
// killed mid-task and the lease sweeper itself perturbed through the
// chaos.SiteLease injection site, verifying every task completes
// exactly once with byte-identical outputs.
//
// Exit status is non-zero when the crash does not fire, the resume does
// not recover checkpointed work, or any output diverges.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/chaos"
	"repro/internal/compss"
	"repro/internal/core"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ncdf"
)

func main() {
	log.SetFlags(0)
	var (
		out       = flag.String("out", "", "output directory (default: a temp dir, removed on success)")
		years     = flag.Int("years", 2, "simulated years")
		days      = flag.Int("days", 12, "days per simulated year")
		seed      = flag.Int64("seed", 5, "simulation seed")
		chaosSeed = flag.Int64("chaos-seed", 42, "fault-injector seed")
		retries   = flag.Int("retries", 2, "per-task retry budget for the faulted runs")
		timeout   = flag.Duration("timeout", time.Minute, "per-task attempt deadline")
		workers   = flag.Int("workers", 4, "task runtime worker slots")
		keep      = flag.Bool("keep", false, "keep the output directory even on success")
		mode      = flag.String("mode", "workflow", "workflow (checkpoint crash/resume) or replica (control-plane lease soak)")
		tasks     = flag.Int("tasks", 300, "task count for -mode replica")
		killEvery = flag.Duration("kill-every", 60*time.Millisecond, "replica kill cadence for -mode replica")
	)
	flag.Parse()

	if *mode == "replica" {
		if err := replicaRun(*tasks, *workers, *chaosSeed, *killEvery); err != nil {
			log.Fatalf("chaosrun: FAIL: %v", err)
		}
		log.Printf("chaosrun: PASS (exactly-once completion under replica kill/restart + lease chaos)")
		return
	} else if *mode != "workflow" {
		log.Fatalf("chaosrun: unknown -mode %q", *mode)
	}

	dir := *out
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "chaosrun-*")
		if err != nil {
			log.Fatal(err)
		}
		if !*keep {
			defer os.RemoveAll(dir)
		}
	}
	if err := run(dir, *years, *days, *seed, *chaosSeed, *retries, *timeout, *workers); err != nil {
		log.Fatalf("chaosrun: FAIL: %v", err)
	}
	log.Printf("chaosrun: PASS (outputs byte-identical after crash/resume)")
}

func baseConfig(outDir string, years, days int, seed int64, workers int) core.Config {
	return core.Config{
		Grid:        grid.Grid{NLat: 24, NLon: 48},
		StartYear:   2040,
		Years:       years,
		DaysPerYear: days,
		Seed:        seed,
		OutputDir:   outDir,
		Workers:     workers,
		CubeServers: 2,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
		},
	}
}

func run(dir string, years, days int, seed, chaosSeed int64, retries int, timeout time.Duration, workers int) error {
	log.Printf("chaosrun: [1/3] clean reference run (%d years x %d days, seed %d)", years, days, seed)
	clean := baseConfig(filepath.Join(dir, "clean"), years, days, seed, workers)
	cleanRes, err := core.Run(clean)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}

	inj := chaos.NewSeeded(chaosSeed,
		chaos.Rule{Site: chaos.SiteTask, Op: core.TaskDailyMax, Attempt: 0, Kind: chaos.Transient},
		chaos.Rule{Site: chaos.SiteTask, Op: core.TaskHWNumber, Attempt: 0, Kind: chaos.PanicKind, Max: 1},
		chaos.Rule{Site: chaos.SiteTask, Op: core.TaskCWNumber, Attempt: chaos.AnyAttempt, Kind: chaos.Latency, Delay: 2 * time.Millisecond},
		chaos.Rule{Site: chaos.SiteCheckpoint, Op: core.TaskValidateStore, Kind: chaos.Crash, Max: 1},
	)
	faulted := baseConfig(filepath.Join(dir, "faulted"), years, days, seed, workers)
	faulted.TaskRetries = retries
	faulted.TaskTimeout = timeout
	faulted.Injector = inj

	ckptPath := filepath.Join(dir, "wf.ckpt")
	cp, err := compss.OpenFileCheckpointer(ckptPath)
	if err != nil {
		return err
	}
	faulted.Checkpointer = cp
	log.Printf("chaosrun: [2/3] faulted run (chaos seed %d, crash before %s checkpoint)", chaosSeed, core.TaskValidateStore)
	if _, err := core.Run(faulted); err == nil {
		return errors.New("the injected crash did not surface as a run failure")
	} else if !errors.Is(err, chaos.ErrCrash) {
		return fmt.Errorf("faulted run failed for the wrong reason: %w", err)
	}
	if err := cp.Close(); err != nil {
		return err
	}

	cp2, err := compss.OpenFileCheckpointer(ckptPath)
	if err != nil {
		return err
	}
	defer cp2.Close()
	faulted.Checkpointer = cp2
	log.Printf("chaosrun: [3/3] resuming from %s", ckptPath)
	res, err := core.Run(faulted)
	if err != nil {
		return fmt.Errorf("resume run: %w", err)
	}
	if res.RuntimeStats.Recovered == 0 {
		return errors.New("resume replayed nothing from the checkpoint")
	}
	log.Printf("chaosrun: resumed with %d checkpointed task(s) replayed, %d task(s) re-executed", res.RuntimeStats.Recovered, res.RuntimeStats.Done)
	for _, k := range []chaos.Kind{chaos.Transient, chaos.PanicKind, chaos.Latency, chaos.Crash} {
		log.Printf("chaosrun: injected %-9s x %d", k, inj.CountKind(k))
	}

	if len(res.Years) != len(cleanRes.Years) {
		return fmt.Errorf("recovered run produced %d years, clean run %d", len(res.Years), len(cleanRes.Years))
	}
	var names []string
	for i, yr := range res.Years {
		cy := cleanRes.Years[i]
		if yr.Year != cy.Year || yr.TrackerTracks != cy.TrackerTracks || yr.HWNumberMean != cy.HWNumberMean {
			return fmt.Errorf("year %d diverged: tracks %d vs %d, hw mean %v vs %v",
				cy.Year, yr.TrackerTracks, cy.TrackerTracks, yr.HWNumberMean, cy.HWNumberMean)
		}
		for _, fam := range []string{"heat_wave", "cold_wave"} {
			for _, idx := range []string{"duration", "number", "frequency"} {
				names = append(names, fmt.Sprintf("%s_%s_%d.nc", fam, idx, cy.Year))
			}
		}
		names = append(names, fmt.Sprintf("heat_wave_number_%d.ppm", cy.Year))
	}
	names = append(names, "heat_wave_number_all_years.ppm")
	for _, name := range names {
		a, err := canonicalOutput(filepath.Join(clean.OutputDir, name))
		if err != nil {
			return err
		}
		b, err := canonicalOutput(filepath.Join(faulted.OutputDir, name))
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("%s differs between the clean and the crash/resumed run", name)
		}
		log.Printf("chaosrun: identical %s (%d bytes)", name, len(a))
	}
	return nil
}

// canonicalOutput reads an artifact for byte comparison; NetCDF-like
// exports are re-serialized without the run-scoped cube_id/provenance
// attributes (engine cube counters differ across executions by design).
func canonicalOutput(path string) ([]byte, error) {
	if filepath.Ext(path) != ".nc" {
		return os.ReadFile(path)
	}
	ds, err := ncdf.ReadFile(path)
	if err != nil {
		return nil, err
	}
	delete(ds.Attrs, "cube_id")
	delete(ds.Attrs, "provenance")
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
