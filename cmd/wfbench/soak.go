package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/execstore"
	"repro/internal/hpcwaas"
	"repro/internal/obs"
	"repro/internal/tosca"
)

// Soak mode (wfbench -exp soak) drives the replicated HPCWaaS control
// plane the way DESIGN.md §13 describes it running in production:
// N stateless API replicas over one epoch-fenced execution store,
// concurrent clients submitting workflow executions over HTTP, and a
// chaos loop killing and replacing executor replicas mid-run. The soak
// asserts the exactly-once contract (zero lost, zero double-completed
// tasks) and reports admission and completion latency quantiles from
// the obs histograms — the numbers EXPERIMENTS.md's soak row records.
var (
	soakTasks     = flag.Int("soak-tasks", 600, "executions to submit in -exp soak")
	soakReplicas  = flag.Int("soak-replicas", 3, "API replicas (each with an embedded executor) in -exp soak")
	soakClients   = flag.Int("soak-clients", 6, "concurrent submitting clients in -exp soak")
	soakKillEvery = flag.Duration("soak-kill-every", 50*time.Millisecond, "executor kill/replace cadence in -exp soak")
)

// soakWorkflow is a deterministic stand-in application: output depends
// only on the parameters, so re-executions after a kill are
// byte-identical and the exactly-once check can compare outputs.
func soakWorkflow(params map[string]string) (map[string]string, error) {
	h := fnv.New64a()
	h.Write([]byte(params["msg"]))
	sum := h.Sum64()
	time.Sleep(time.Duration(sum%6+2) * time.Millisecond)
	return map[string]string{
		"echo":   params["msg"],
		"digest": fmt.Sprintf("%016x", sum),
	}, nil
}

func soak() {
	fmt.Println("=== SOAK: replicated control plane, kill/restart chaos over HTTP ===")
	fmt.Printf("(%d tasks, %d API replicas, %d clients, executor killed every %v)\n",
		*soakTasks, *soakReplicas, *soakClients, *soakKillEvery)

	metrics := obs.NewRegistry()
	admBounds := []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	admHist := metrics.Histogram("wfbench_admission_seconds",
		"Client-observed submit latency including shed retries.", admBounds)

	store, err := execstore.Open(execstore.Config{
		MaxPending:       1 << 13,
		LeaseTTL:         250 * time.Millisecond,
		SweepEvery:       20 * time.Millisecond,
		MaxEstimatedWait: 2 * time.Second,
		Metrics:          metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	registry := hpcwaas.NewRegistry()
	if err := registry.Register(hpcwaas.Entry{
		Name: "soak", Version: "1.0", Description: "deterministic soak workload",
		Topology: tosca.ClimateTopology("zeus"), App: soakWorkflow,
	}); err != nil {
		log.Fatal(err)
	}

	// API replicas, each embedding a 4-worker executor, on real sockets.
	fronts := make([]*hpcwaas.Frontend, *soakReplicas)
	urls := make([]string, *soakReplicas)
	for i := range fronts {
		f, err := hpcwaas.NewFrontend(hpcwaas.FrontendConfig{
			ID: fmt.Sprintf("api-%d", i), Store: store, Registry: registry, Workers: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fronts[i] = f
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		urls[i] = "http://" + ln.Addr().String()
		srv := &http.Server{Handler: f.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
	}

	// Chaos: kill one executor per tick and replace its capacity with a
	// fresh headless replica (a frontend that serves no HTTP).
	stopChaos := make(chan struct{})
	killsCh := make(chan int)
	go func() {
		kills := 0
		var spares []*hpcwaas.Frontend
		defer func() {
			for _, sp := range spares {
				sp.KillExecutor()
			}
			killsCh <- kills
		}()
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(*soakKillEvery):
			}
			fronts[kills%len(fronts)].KillExecutor()
			sp, err := hpcwaas.NewFrontend(hpcwaas.FrontendConfig{
				ID:    fmt.Sprintf("spare-%d", kills),
				Store: store, Registry: registry, Workers: 4,
			})
			if err == nil {
				spares = append(spares, sp)
			}
			kills++
		}
	}()

	// Concurrent clients: spread across replicas, retry on shed using
	// the precise retry_after_ms hint, record admission latency.
	ids := make([]string, *soakTasks)
	var shedRetries int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < *soakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < *soakTasks; i += *soakClients {
				url := urls[i%len(urls)]
				body, _ := json.Marshal(map[string]any{
					"workflow": "soak",
					"params":   map[string]string{"msg": fmt.Sprintf("m-%d", i)},
				})
				start := time.Now()
				for {
					resp, err := http.Post(url+"/api/executions", "application/json", bytes.NewReader(body))
					if err != nil {
						log.Fatal(err)
					}
					if resp.StatusCode == http.StatusAccepted {
						var ex struct {
							ID string `json:"id"`
						}
						json.NewDecoder(resp.Body).Decode(&ex)
						resp.Body.Close()
						ids[i] = ex.ID
						break
					}
					var shed struct {
						RetryAfterMS float64 `json:"retry_after_ms"`
					}
					json.NewDecoder(resp.Body).Decode(&shed)
					resp.Body.Close()
					if shed.RetryAfterMS <= 0 {
						log.Fatalf("submit %d: status %d without retry_after_ms", i, resp.StatusCode)
					}
					mu.Lock()
					shedRetries++
					mu.Unlock()
					time.Sleep(time.Duration(shed.RetryAfterMS) * time.Millisecond)
				}
				admHist.Observe(time.Since(start).Seconds())
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := store.WaitIdle(ctx); err != nil {
		log.Fatalf("soak did not converge: %v (stats %+v)", err, store.Stats())
	}
	wall := time.Since(t0)
	close(stopChaos)
	kills := <-killsCh
	for _, f := range fronts {
		f.KillExecutor()
	}

	// Exactly-once verification over HTTP: every accepted execution is
	// DONE on a replica other than the accepting one, outputs intact.
	for i, id := range ids {
		resp, err := http.Get(urls[(i+1)%len(urls)] + "/api/executions/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var ex struct {
			Status  string            `json:"status"`
			Results map[string]string `json:"results"`
			Error   string            `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&ex)
		resp.Body.Close()
		if ex.Status != "DONE" {
			log.Fatalf("execution %s: %s (err %q), want DONE — task lost or failed", id, ex.Status, ex.Error)
		}
		if want := fmt.Sprintf("m-%d", i); ex.Results["echo"] != want {
			log.Fatalf("execution %s results corrupted: %v", id, ex.Results)
		}
	}
	st := store.Stats()
	if int(st.Completed) != *soakTasks {
		log.Fatalf("completed %d of %d: double or lost completions", st.Completed, *soakTasks)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		log.Fatalf("failed=%d canceled=%d, want 0/0", st.Failed, st.Canceled)
	}

	if kills == 0 {
		fmt.Println("warning: backlog drained before any kill landed; raise -soak-tasks or lower -soak-kill-every")
	}
	adm := admHist.Snapshot()
	ms := func(s float64) float64 { return s * 1000 }
	fmt.Printf("\nexactly-once verified: %d/%d tasks DONE, 0 lost, 0 double-completed\n", st.Completed, *soakTasks)
	fmt.Printf("chaos: %d executor kills, %d lease reclaims, %d fenced stale reports, %d shed retries\n",
		kills, st.Reclaimed, st.Fenced, shedRetries)
	fmt.Printf("wall clock: %v (%.0f tasks/s)\n", wall.Round(time.Millisecond), float64(*soakTasks)/wall.Seconds())
	fmt.Printf("%-28s %10s %10s %10s\n", "latency (ms)", "p50", "p99", "p999")
	fmt.Printf("%-28s %10.2f %10.2f %10.2f\n", "admission (client, w/ shed)",
		ms(adm.Quantile(0.50)), ms(adm.Quantile(0.99)), ms(adm.Quantile(0.999)))
	fmt.Printf("%-28s %10.2f %10.2f %10.2f\n", "completion (submit->done)",
		ms(st.E2E.P50Seconds), ms(st.E2E.P99Seconds), ms(st.E2E.P999Seconds))
	fmt.Println()
}
