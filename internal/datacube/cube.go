package datacube

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ncdf"
)

// Dimension is a named axis of a cube.
type Dimension struct {
	Name string
	Size int
}

// fragment is a contiguous block of rows hosted by one I/O server.
type fragment struct {
	rowStart, rowCount int
	data               []float32 // rowCount × implicitSize, row-major
	server             int
}

// Cube is an immutable datacube: rows indexed by the explicit
// dimensions (row-major), each row holding an array over the implicit
// dimension. Operators return new cubes; source cubes stay resident in
// memory until deleted, enabling reuse across pipelines.
type Cube struct {
	id       string
	desc     string
	measure  string
	engine   *Engine
	explicit []Dimension
	implicit Dimension
	rows     int
	frags    []*fragment
	// metadata: the first key lives inline (metaK/metaV); meta is
	// allocated only once a second distinct key arrives.
	metaK, metaV string
	meta         map[string]string

	// resolution pyramid (pyramid.go): built lazily on first tolerant
	// access under tierOnce; tiersOK publishes the result so byte
	// accounting can read it without forcing a build.
	tierOnce sync.Once
	tiersOK  atomic.Bool
	tiers    []tier
}

// ID returns the cube's engine-assigned identifier (Ophidia's PID).
func (c *Cube) ID() string { return c.id }

// Measure returns the physical variable name the cube carries.
func (c *Cube) Measure() string { return c.measure }

// SetMeasure renames the cube's variable, e.g. after an index pipeline
// turns a temperature cube into a derived indicator.
func (c *Cube) SetMeasure(name string) { c.measure = name }

// Description returns the provenance string of the producing operator.
func (c *Cube) Description() string { return c.desc }

// Rows returns the number of explicit-index rows.
func (c *Cube) Rows() int { return c.rows }

// ImplicitLen returns the in-row array length.
func (c *Cube) ImplicitLen() int { return c.implicit.Size }

// ExplicitDims returns a copy of the explicit dimensions.
func (c *Cube) ExplicitDims() []Dimension {
	return append([]Dimension(nil), c.explicit...)
}

// ImplicitDim returns the implicit dimension.
func (c *Cube) ImplicitDim() Dimension { return c.implicit }

// Fragments reports the fragment count.
func (c *Cube) Fragments() int { return len(c.frags) }

// SetMeta attaches a metadata key/value (Ophidia metadata management).
// The first key is stored inline; the map is only allocated when a cube
// carries more than one key, since index pipelines tag every output
// cube with exactly one entry.
func (c *Cube) SetMeta(k, v string) {
	if c.meta == nil && (c.metaK == "" || c.metaK == k) {
		c.metaK, c.metaV = k, v
		return
	}
	if c.meta == nil {
		c.meta = map[string]string{c.metaK: c.metaV}
	}
	c.meta[k] = v
}

// Meta reads a metadata value.
func (c *Cube) Meta(k string) (string, bool) {
	if c.meta == nil {
		if k != "" && k == c.metaK {
			return c.metaV, true
		}
		return "", false
	}
	v, ok := c.meta[k]
	return v, ok
}

// rowSlice returns the backing slice of one row (no copy).
func (c *Cube) rowSlice(row int) []float32 {
	for _, fr := range c.frags {
		if row >= fr.rowStart && row < fr.rowStart+fr.rowCount {
			n := c.implicit.Size
			off := (row - fr.rowStart) * n
			return fr.data[off : off+n]
		}
	}
	return nil
}

// Row returns a copy of one row's array.
func (c *Cube) Row(row int) ([]float32, error) {
	if row < 0 || row >= c.rows {
		return nil, fmt.Errorf("datacube: row %d out of range [0,%d)", row, c.rows)
	}
	src := c.rowSlice(row)
	out := make([]float32, len(src))
	copy(out, src)
	return out, nil
}

// Values returns a full copy of the cube as [row][t]. All rows share
// one backing allocation (each row slice is capacity-clipped, so
// appending to one cannot clobber its neighbor).
func (c *Cube) Values() [][]float32 {
	n := c.implicit.Size
	flat := make([]float32, c.rows*n)
	for _, fr := range c.frags {
		copy(flat[fr.rowStart*n:], fr.data)
	}
	out := make([][]float32, c.rows)
	for r := 0; r < c.rows; r++ {
		out[r] = flat[r*n : (r+1)*n : (r+1)*n]
	}
	return out
}

// CopyRow copies one row's array into dst without allocating and
// reports how many values were written (min of len(dst) and the
// implicit length). Hot readers — viz map rendering, per-cell index
// export — reuse one buffer across rows instead of paying Row's
// per-call allocation.
func (c *Cube) CopyRow(dst []float32, row int) (int, error) {
	if row < 0 || row >= c.rows {
		return 0, fmt.Errorf("datacube: row %d out of range [0,%d)", row, c.rows)
	}
	return copy(dst, c.rowSlice(row)), nil
}

// Scalar returns the single value of a 1×1 cube.
func (c *Cube) Scalar() (float64, error) {
	if c.rows != 1 || c.implicit.Size != 1 {
		return 0, fmt.Errorf("datacube: cube is %d×%d, not scalar", c.rows, c.implicit.Size)
	}
	return float64(c.rowSlice(0)[0]), nil
}

// sameShape verifies two cubes align for intercube operations.
func (c *Cube) sameShape(o *Cube) error {
	if c.rows != o.rows || c.implicit.Size != o.implicit.Size {
		return fmt.Errorf("datacube: shape mismatch: %dx%d vs %dx%d",
			c.rows, c.implicit.Size, o.rows, o.implicit.Size)
	}
	return nil
}

// Apply evaluates an elementwise expression over x (every stored value)
// and returns the resulting cube — Ophidia's oph_apply/oph_predicate.
func (c *Cube) Apply(exprSrc string) (*Cube, error) {
	expr, err := compileCached(exprSrc)
	if err != nil {
		return nil, err
	}
	e := c.engine
	out := e.newCube(c.explicit, c.implicit)
	out.measure = c.measure
	err = e.mapFragments("apply", out, func(fr *fragment) error {
		n := c.implicit.Size
		for r := 0; r < fr.rowCount; r++ {
			src := c.rowSlice(fr.rowStart + r)
			dst := fr.data[r*n : (r+1)*n]
			for t, v := range src {
				dst[t] = float32(expr.Eval(float64(v)))
			}
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("apply(%s)", exprSrc)), nil
}

// Reduce collapses the implicit axis to one value per row with a named
// row operation — Ophidia's oph_reduce.
func (c *Cube) Reduce(op string, params ...float64) (*Cube, error) {
	return c.ReduceGroup(op, c.implicit.Size, params...)
}

// ReduceGroup reduces consecutive groups of `group` values along the
// implicit axis (oph_reduce2 with a concept level): e.g. group=4 turns
// 6-hourly steps into daily statistics. The implicit size must be a
// multiple of group.
func (c *Cube) ReduceGroup(op string, group int, params ...float64) (*Cube, error) {
	rop, ok := LookupRowOp(op)
	if !ok {
		return nil, fmt.Errorf("datacube: unknown row op %q (have %v)", op, RowOpNames())
	}
	if group <= 0 || c.implicit.Size%group != 0 {
		return nil, fmt.Errorf("datacube: group %d does not divide implicit length %d", group, c.implicit.Size)
	}
	e := c.engine
	outLen := c.implicit.Size / group
	out := e.newCube(c.explicit, Dimension{Name: c.implicit.Name, Size: outLen})
	out.measure = c.measure
	err := e.mapFragments("reduce", out, func(fr *fragment) error {
		for r := 0; r < fr.rowCount; r++ {
			src := c.rowSlice(fr.rowStart + r)
			dst := fr.data[r*outLen : (r+1)*outLen]
			for gidx := 0; gidx < outLen; gidx++ {
				dst[gidx] = float32(rop(src[gidx*group:(gidx+1)*group], params))
			}
		}
		e.addCells(int64(fr.rowCount * c.implicit.Size))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("reduce(%s,group=%d)", op, group)), nil
}

// ReduceStride reduces interleaved groups along the implicit axis:
// output position k aggregates the elements at positions k, k+stride,
// k+2·stride, …. With a year-major concatenation of equal-length years
// (y0d0…y0dN, y1d0…), stride = days-per-year computes a per-day-of-year
// statistic across years — the percentile-climatology primitive of the
// ETCCDI indices the paper cites for wave definitions.
func (c *Cube) ReduceStride(op string, stride int, params ...float64) (*Cube, error) {
	rop, ok := LookupRowOp(op)
	if !ok {
		return nil, fmt.Errorf("datacube: unknown row op %q (have %v)", op, RowOpNames())
	}
	if stride <= 0 || c.implicit.Size%stride != 0 {
		return nil, fmt.Errorf("datacube: stride %d does not divide implicit length %d", stride, c.implicit.Size)
	}
	e := c.engine
	groups := c.implicit.Size / stride
	out := e.newCube(c.explicit, Dimension{Name: c.implicit.Name, Size: stride})
	out.measure = c.measure
	err := e.mapFragments("reducestride", out, func(fr *fragment) error {
		// One sequential pass over src per row transposes all groups into
		// contiguous runs; the old layout gathered each output position
		// with stride-sized jumps, re-streaming the row `stride` times
		// and thrashing the cache for wide strides (e.g. 365-day years).
		sb := e.getScratch(c.implicit.Size)
		defer e.putScratch(sb)
		tb := sb.buf
		for r := 0; r < fr.rowCount; r++ {
			src := c.rowSlice(fr.rowStart + r)
			dst := fr.data[r*stride : (r+1)*stride]
			for gidx := 0; gidx < groups; gidx++ {
				base := gidx * stride
				for k := 0; k < stride; k++ {
					tb[k*groups+gidx] = src[base+k]
				}
			}
			for k := 0; k < stride; k++ {
				dst[k] = float32(rop(tb[k*groups:(k+1)*groups], params))
			}
		}
		e.addCells(int64(fr.rowCount * c.implicit.Size))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("reducestride(%s,%d)", op, stride)), nil
}

// Subset selects the half-open range [lo,hi) along the implicit axis —
// oph_subset on the array dimension.
func (c *Cube) Subset(lo, hi int) (*Cube, error) {
	if lo < 0 || hi > c.implicit.Size || lo >= hi {
		return nil, fmt.Errorf("datacube: subset [%d,%d) out of range [0,%d)", lo, hi, c.implicit.Size)
	}
	e := c.engine
	out := e.newCube(c.explicit, Dimension{Name: c.implicit.Name, Size: hi - lo})
	out.measure = c.measure
	n := hi - lo
	err := e.mapFragments("subset", out, func(fr *fragment) error {
		for r := 0; r < fr.rowCount; r++ {
			src := c.rowSlice(fr.rowStart + r)
			copy(fr.data[r*n:(r+1)*n], src[lo:hi])
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("subset[%d:%d]", lo, hi)), nil
}

// SubsetRows selects the half-open row range [lo,hi) along the leading
// explicit dimension, which must evenly decompose (contiguous rows).
func (c *Cube) SubsetRows(lo, hi int) (*Cube, error) {
	if len(c.explicit) == 0 {
		return nil, fmt.Errorf("datacube: cube has no explicit dimensions")
	}
	lead := c.explicit[0]
	if lo < 0 || hi > lead.Size || lo >= hi {
		return nil, fmt.Errorf("datacube: row subset [%d,%d) out of range [0,%d)", lo, hi, lead.Size)
	}
	rowsPer := c.rows / lead.Size
	e := c.engine
	newExp := append([]Dimension(nil), c.explicit...)
	newExp[0] = Dimension{Name: lead.Name, Size: hi - lo}
	out := e.newCube(newExp, c.implicit)
	out.measure = c.measure
	n := c.implicit.Size
	base := lo * rowsPer
	err := e.mapFragments("subsetrows", out, func(fr *fragment) error {
		for r := 0; r < fr.rowCount; r++ {
			src := c.rowSlice(base + fr.rowStart + r)
			copy(fr.data[r*n:(r+1)*n], src)
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("subsetrows[%d:%d]", lo, hi)), nil
}

// Intercube combines two aligned cubes elementwise — oph_intercube.
// op is one of "add", "sub", "mul", "div".
func (c *Cube) Intercube(o *Cube, op string) (*Cube, error) {
	if err := c.sameShape(o); err != nil {
		return nil, err
	}
	f, err := intercubeFunc(op)
	if err != nil {
		return nil, err
	}
	e := c.engine
	out := e.newCube(c.explicit, c.implicit)
	out.measure = c.measure
	n := c.implicit.Size
	err = e.mapFragments("intercube", out, func(fr *fragment) error {
		for r := 0; r < fr.rowCount; r++ {
			row := fr.rowStart + r
			a := c.rowSlice(row)
			b := o.rowSlice(row)
			dst := fr.data[r*n : (r+1)*n]
			for t := range dst {
				dst[t] = f(a[t], b[t])
			}
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, "intercube("+op+")"), nil
}

// AggregateTrailing collapses the trailing explicit dimension by
// applying the named op across its positions at each implicit index:
// on a (lat, lon) cube this yields zonal statistics per latitude, the
// classic climate diagnostic. The cube must have at least two explicit
// dimensions.
func (c *Cube) AggregateTrailing(op string, params ...float64) (*Cube, error) {
	rop, ok := LookupRowOp(op)
	if !ok {
		return nil, fmt.Errorf("datacube: unknown row op %q", op)
	}
	if len(c.explicit) < 2 {
		return nil, fmt.Errorf("datacube: need ≥2 explicit dimensions, have %d", len(c.explicit))
	}
	trail := c.explicit[len(c.explicit)-1]
	lead := c.explicit[:len(c.explicit)-1]
	e := c.engine
	n := c.implicit.Size
	out := e.newCube(lead, c.implicit)
	out.measure = c.measure
	err := e.mapFragments("aggtrailing", out, func(fr *fragment) error {
		col := make([]float32, trail.Size)
		for r := 0; r < fr.rowCount; r++ {
			group := fr.rowStart + r // index over the leading dims
			dst := fr.data[r*n : (r+1)*n]
			for t := 0; t < n; t++ {
				for k := 0; k < trail.Size; k++ {
					col[k] = c.rowSlice(group*trail.Size + k)[t]
				}
				dst[t] = float32(rop(col, params))
			}
		}
		e.addCells(int64(fr.rowCount * n * trail.Size))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, fmt.Sprintf("aggtrailing(%s,%s)", op, trail.Name)), nil
}

// AggregateRows collapses all rows into a single row by applying the
// named op across rows at each implicit position (spatial aggregation).
func (c *Cube) AggregateRows(op string, params ...float64) (*Cube, error) {
	rop, ok := LookupRowOp(op)
	if !ok {
		return nil, fmt.Errorf("datacube: unknown row op %q", op)
	}
	e := c.engine
	n := c.implicit.Size
	out := e.newCube([]Dimension{{Name: "all", Size: 1}}, c.implicit)
	out.measure = c.measure
	// gather column-wise; small output, do it on one server via mapFragments
	err := e.mapFragments("aggrows", out, func(fr *fragment) error {
		col := make([]float32, c.rows)
		for t := 0; t < n; t++ {
			for r := 0; r < c.rows; r++ {
				col[r] = c.rowSlice(r)[t]
			}
			fr.data[t] = float32(rop(col, params))
		}
		e.addCells(int64(c.rows * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, "aggrows("+op+")"), nil
}

// ExportNC materializes the cube as a GNC1 dataset with its explicit
// dimensions plus the implicit one as the trailing axis —
// oph_exportnc2 in Listing 1.
func (c *Cube) ExportNC() (*ncdf.Dataset, error) {
	ds := ncdf.NewDataset()
	var dims []string
	for _, d := range c.explicit {
		if err := ds.AddDim(d.Name, d.Size); err != nil {
			return nil, err
		}
		dims = append(dims, d.Name)
	}
	if c.implicit.Size > 1 || len(c.explicit) == 0 {
		if err := ds.AddDim(c.implicit.Name, c.implicit.Size); err != nil {
			return nil, err
		}
		dims = append(dims, c.implicit.Name)
	}
	n := c.implicit.Size
	data := make([]float32, c.rows*n)
	for r := 0; r < c.rows; r++ {
		copy(data[r*n:(r+1)*n], c.rowSlice(r))
	}
	name := c.measure
	if name == "" {
		name = "measure"
	}
	if _, err := ds.AddVar(name, dims, data); err != nil {
		return nil, err
	}
	if c.meta == nil {
		if c.metaK != "" {
			ds.Attrs[c.metaK] = ncdf.String(c.metaV)
		}
	} else {
		for k, v := range c.meta {
			ds.Attrs[k] = ncdf.String(v)
		}
	}
	ds.Attrs["cube_id"] = ncdf.String(c.id)
	ds.Attrs["provenance"] = ncdf.String(c.desc)
	return ds, nil
}

// ExportFile writes ExportNC output to path.
func (c *Cube) ExportFile(path string) error {
	ds, err := c.ExportNC()
	if err != nil {
		return err
	}
	return ncdf.WriteFile(path, ds)
}

// Delete removes the cube from its engine (Listing 1's Mask.delete()).
func (c *Cube) Delete() error { return c.engine.Delete(c.id) }
