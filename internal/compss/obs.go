package compss

import "repro/internal/obs"

// attemptBounds bucket task-attempt durations; workflow tasks range
// from sub-millisecond index reductions to multi-second ESM runs.
var attemptBounds = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300,
}

// rtMetrics holds the runtime's instruments. With a nil registry they
// are detached no-ops, so the hot path records unconditionally.
type rtMetrics struct {
	succeeded *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	ignored   *obs.Counter
	recovered *obs.Counter
	retried   *obs.Counter
	timedOut  *obs.Counter
	attempt   *obs.Histogram
}

func newRTMetrics(reg *obs.Registry) *rtMetrics {
	return &rtMetrics{
		succeeded: reg.Counter("compss_tasks_succeeded_total", "Tasks that finished successfully."),
		failed:    reg.Counter("compss_tasks_failed_total", "Tasks that failed terminally (after retries)."),
		cancelled: reg.Counter("compss_tasks_cancelled_total", "Tasks cancelled by failure propagation or abort."),
		ignored:   reg.Counter("compss_tasks_ignored_total", "Failed tasks resolved to nil under the Ignore policy."),
		recovered: reg.Counter("compss_tasks_recovered_total", "Tasks replayed from a checkpoint instead of executing."),
		retried:   reg.Counter("compss_tasks_retried_total", "Failed attempts that were retried."),
		timedOut:  reg.Counter("compss_tasks_timed_out_total", "Attempts that exceeded their per-task deadline."),
		attempt:   reg.Histogram("compss_task_attempt_seconds", "Wall-clock duration of one task attempt.", attemptBounds),
	}
}

// PrimeMetrics registers the runtime's metric families on reg so a
// scrape shows the full surface before any workflow has executed.
func PrimeMetrics(reg *obs.Registry) { newRTMetrics(reg) }
