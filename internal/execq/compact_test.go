package execq

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestJournalCompactionBoundsFile proves a long submit/complete churn
// cannot grow the journal without bound: size-triggered compaction
// rewrites it down to the live jobs, recovery still works afterwards,
// and the existing corrupt-line skip path survives a compacted file.
func TestJournalCompactionBoundsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.journal")
	q, err := New(Config{
		Workers:         2,
		QueueDepth:      64,
		JournalPath:     path,
		JournalMaxBytes: 2048,
		Handler:         func(ctx context.Context, j JobView) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		for {
			_, err := q.Submit(Job{ID: fmt.Sprintf("churn-%d", i)})
			if err == nil {
				break
			}
			if _, ok := RetryAfter(err); !ok {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(100 * time.Microsecond) // backlogged: let workers drain
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.JournalCompactions == 0 {
		t.Fatal("500 completed jobs with a 2 KiB bound never triggered a compaction")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Live set is tiny at idle, so the file must sit well under the
	// worst case of one full uncompacted churn (500 jobs ≈ 60 KiB). The
	// bound is loose because up to ~2 KiB of terminal records may have
	// accumulated since the last compaction.
	if fi.Size() > 3*2048 {
		t.Fatalf("journal is %d bytes after churn; compaction should keep it near the 2048 bound", fi.Size())
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// A compacted journal must still recover live work. Re-open with a
	// blocked handler, park pending jobs, crash (close without drain),
	// corrupt one mid-file line, and recover.
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	q2, err := New(Config{
		Workers:         1,
		QueueDepth:      64,
		JournalPath:     path,
		JournalMaxBytes: 2048,
		Handler: func(ctx context.Context, j JobView) error {
			started <- struct{}{}
			select {
			case <-block:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := q2.Submit(Job{ID: fmt.Sprintf("pending-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon q2 without Drain/Close (Close would cancel the
	// queued jobs and journal them terminal). The parked worker and open
	// journal handle leak for the remainder of the test, as in a real
	// kill -9 the file simply stops receiving appends. Wait for the
	// single worker to park first: its RUNNING record is journaled
	// before the handler runs, so after this signal nothing can append
	// concurrently with the corruption rewrite below.
	<-started

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("{garbage\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ran := map[string]int{}
	q3, err := New(Config{
		Workers:         2,
		QueueDepth:      64,
		JournalPath:     path,
		JournalMaxBytes: 2048,
		Handler: func(ctx context.Context, j JobView) error {
			mu.Lock()
			ran[j.ID]++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if err := q3.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st3 := q3.Stats()
	if st3.JournalSkipped != 1 {
		t.Fatalf("JournalSkipped = %d, want 1 (the injected garbage line)", st3.JournalSkipped)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("pending-%d", i)
		if ran[id] != 1 {
			t.Fatalf("recovered job %s ran %d times, want exactly 1 (ran: %v)", id, ran[id], ran)
		}
	}
}

// TestConcurrentStatsDuringDrain races Stats readers against a drain:
// the regression target is any lock-ordering or snapshot bug that only
// a concurrent Stats during teardown exposes (previously covered only
// incidentally by the stress test).
func TestConcurrentStatsDuringDrain(t *testing.T) {
	q, err := New(Config{
		Workers:    4,
		QueueDepth: 256,
		Handler: func(ctx context.Context, j JobView) error {
			time.Sleep(200 * time.Microsecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := q.Submit(Job{Principal: fmt.Sprintf("p%d", i%7)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := q.Stats()
				if st.Depth < 0 || st.Running < 0 || st.Running > st.Workers {
					t.Errorf("inconsistent stats snapshot: %+v", st)
					return
				}
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	st := q.Stats()
	if !st.Draining {
		t.Fatal("queue not draining after Drain returned")
	}
	if st.Completed != 200 {
		t.Fatalf("completed %d of 200", st.Completed)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalReplayRacesNewSubmissions starts a queue over a journal
// full of pending work and immediately fires concurrent submissions at
// it: recovered and fresh jobs must each execute exactly once, and a
// fresh submission reusing a recovered ID must be rejected as a
// duplicate, not silently doubled.
func TestJournalReplayRacesNewSubmissions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.journal")
	const recovered, fresh = 40, 40

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for i := 0; i < recovered; i++ {
		rec := submitRecord(Job{ID: fmt.Sprintf("old-%d", i)}, time.Now())
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	ran := map[string]int{}
	q, err := New(Config{
		Workers:     4,
		QueueDepth:  256,
		JournalPath: path,
		Handler: func(ctx context.Context, j JobView) error {
			mu.Lock()
			ran[j.ID]++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	dupErrs := make(chan error, recovered)
	for i := 0; i < fresh; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := q.Submit(Job{ID: fmt.Sprintf("new-%d", i)}); err != nil {
				t.Errorf("submit new-%d: %v", i, err)
			}
			// Colliding with a recovered ID must fail cleanly while the
			// recovered job may already be running or done.
			if _, err := q.Submit(Job{ID: fmt.Sprintf("old-%d", i)}); err != nil {
				dupErrs <- err
			}
		}(i)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < recovered; i++ {
		id := fmt.Sprintf("old-%d", i)
		// A resubmit that lost the duplicate check because the recovered
		// job already finished legitimately runs the ID a second time;
		// what must never happen is a double run without a finished first
		// one, i.e. more runs than (1 + accepted resubmits for that ID).
		if ran[id] < 1 || ran[id] > 2 {
			t.Fatalf("recovered job %s ran %d times", id, ran[id])
		}
	}
	for i := 0; i < fresh; i++ {
		id := fmt.Sprintf("new-%d", i)
		if ran[id] != 1 {
			t.Fatalf("fresh job %s ran %d times, want 1", id, ran[id])
		}
	}
	if q.Stats().Recovered != recovered {
		t.Fatalf("recovered %d, want %d", q.Stats().Recovered, recovered)
	}
}

// TestRateLimitRetryAfterExact asserts the admission hint is the
// rate-limiter's actual next-token time: a client sleeping exactly
// Retry-After is admitted on its next attempt.
func TestRateLimitRetryAfterExact(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	q, err := New(Config{
		Workers: 1, QueueDepth: 16,
		RatePerSec: 3, Burst: 1,
		Handler: func(ctx context.Context, j JobView) error { return nil },
		nowFn:   clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	if _, err := q.Submit(Job{Principal: "u"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = q.Submit(Job{Principal: "u"})
	wait, ok := RetryAfter(err)
	if !ok {
		t.Fatalf("second submit: want rate-limit rejection with hint, got %v", err)
	}
	// The hint must be the actual next-token time at rate 3/s: one token
	// every ~333ms, not the 1s default constant.
	if wait <= 0 || wait > 400*time.Millisecond {
		t.Fatalf("Retry-After hint %v; want the ~333ms next-token time", wait)
	}
	// Sleeping any less than the hint must still be rejected…
	advance(wait - time.Millisecond)
	if _, err := q.Submit(Job{Principal: "u"}); err == nil {
		t.Fatal("admitted before the advertised Retry-After elapsed")
	}
	// …and sleeping exactly the remaining time must be admitted.
	advance(time.Millisecond)
	if _, err := q.Submit(Job{Principal: "u"}); err != nil {
		t.Fatalf("client that slept exactly Retry-After was rejected: %v", err)
	}
}

// TestAdmitHintAdapts checks queue-full rejections derive their hint
// from observed run latency once data exists, instead of the fixed
// constant.
func TestAdmitHintAdapts(t *testing.T) {
	var gateMu sync.Mutex
	gate := make(chan struct{})
	swapGate := func(c chan struct{}) {
		gateMu.Lock()
		gate = c
		gateMu.Unlock()
	}
	q, err := New(Config{
		Workers: 1, QueueDepth: 1,
		RetryAfterHint: 7 * time.Second,
		Handler: func(ctx context.Context, j JobView) error {
			gateMu.Lock()
			g := gate
			gateMu.Unlock()
			select {
			case <-g:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// No run data yet: the configured constant is all there is.
	fillQueue(t, q)
	_, err = q.Submit(Job{ID: "overflow-1"})
	if wait, ok := RetryAfter(err); !ok || wait != 7*time.Second {
		t.Fatalf("pre-data hint = %v (%v), want the configured 7s", wait, err)
	}

	// Complete the backlog to feed the run histogram, refill, and the
	// hint must now be the sub-second mean-run estimate.
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	swapGate(make(chan struct{})) // phase-2 jobs park again
	fillQueue(t, q)
	_, err = q.Submit(Job{ID: "overflow-2"})
	wait, ok := RetryAfter(err)
	if !ok {
		t.Fatalf("want queue-full rejection, got %v", err)
	}
	if wait >= 7*time.Second {
		t.Fatalf("post-data hint = %v, want an adaptive estimate below the 7s constant", wait)
	}
	if wait < time.Millisecond {
		t.Fatalf("post-data hint = %v, want >= 1ms floor", wait)
	}
}

// fillQueue stuffs jobs until the queue rejects as full (worker may be
// parked on a prior job, so a couple of submits can be absorbed).
func fillQueue(t *testing.T, q *Queue) {
	t.Helper()
	for i := 0; i < 16; i++ {
		if _, err := q.Submit(Job{}); err != nil {
			return
		}
	}
	t.Fatal("queue never filled")
}
