package execstore

import (
	"math"

	"repro/internal/obs"
)

// histBounds are the exponential latency bucket upper bounds in
// seconds, shared by the wait/run/e2e histograms and the per-kind cost
// model.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// smetrics holds the store's instruments. With a nil registry the
// instruments are detached but still record, so Stats() works anywhere.
type smetrics struct {
	submitted      *obs.Counter
	recovered      *obs.Counter
	journalSkipped *obs.Counter
	compactions    *obs.Counter
	acquired       *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	canceled       *obs.Counter
	retried        *obs.Counter
	reclaimed      *obs.Counter
	fenced         *obs.Counter
	shed           *obs.CounterVec
	wait           *obs.Histogram
	run            *obs.Histogram
	e2e            *obs.Histogram
}

func newSMetrics(reg *obs.Registry) *smetrics {
	return &smetrics{
		submitted:      reg.Counter("execstore_submitted_total", "Tasks accepted by Submit."),
		recovered:      reg.Counter("execstore_recovered_total", "Tasks re-queued from the journal at startup."),
		journalSkipped: reg.Counter("execstore_journal_skipped_total", "Corrupt journal lines skipped during recovery."),
		compactions:    reg.Counter("execstore_journal_compactions_total", "Size-triggered journal compactions."),
		acquired:       reg.Counter("execstore_leases_acquired_total", "Leases handed to replicas."),
		completed:      reg.Counter("execstore_completed_total", "Tasks completed exactly once."),
		failed:         reg.Counter("execstore_failed_total", "Tasks failed terminally."),
		canceled:       reg.Counter("execstore_canceled_total", "Tasks canceled."),
		retried:        reg.Counter("execstore_retried_total", "Transient failures re-queued with backoff."),
		reclaimed:      reg.Counter("execstore_leases_reclaimed_total", "Expired leases reclaimed from dead or skewed holders."),
		fenced:         reg.Counter("execstore_fenced_total", "Completions/failures rejected for a stale lease epoch."),
		shed:           reg.CounterVec("execstore_shed_total", "Submissions shed at admission, by reason.", "reason"),
		wait:           reg.Histogram("execstore_wait_seconds", "Queue-to-lease latency.", histBounds),
		run:            reg.Histogram("execstore_run_seconds", "Lease-to-completion latency of successful attempts.", histBounds),
		e2e:            reg.Histogram("execstore_e2e_seconds", "Submit-to-completion latency.", histBounds),
	}
}

func (m *smetrics) shedFor(r ShedReason) *obs.Counter { return m.shed.With(string(r)) }

// registerGauges exposes live store state on the registry. One store
// per registry: a second store would overwrite these gauge functions.
func (s *Store) registerGauges(reg *obs.Registry) {
	if reg == nil {
		return
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("execstore_pending", "Tasks waiting for a lease.",
		locked(func() float64 { return float64(s.pending) }))
	reg.GaugeFunc("execstore_leased", "Tasks currently leased to replicas.",
		locked(func() float64 { return float64(len(s.leasedSet)) }))
	reg.GaugeFunc("execstore_epoch", "Current fencing epoch.",
		locked(func() float64 { return float64(s.epoch) }))
	reg.GaugeFunc("execstore_tenants_active", "Tenants with pending work.",
		locked(func() float64 { return float64(len(s.ring)) }))
	reg.GaugeFunc("execstore_replicas_live", "Replicas inside the liveness window.",
		locked(func() float64 { return float64(len(s.replicas)) }))
	reg.GaugeFunc("execstore_backlog_cost_seconds", "Estimated cost-seconds of the pending backlog.",
		locked(func() float64 { return s.backlogSecs }))
	reg.GaugeFunc("execstore_draining", "1 while the store refuses new work.",
		locked(func() float64 {
			if s.draining || s.closed {
				return 1
			}
			return 0
		}))
}

// HistogramSummary is the JSON-friendly snapshot of one latency
// histogram, with p999 included for the soak report.
type HistogramSummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
}

func summarize(h *obs.Histogram) HistogramSummary {
	snap := h.Snapshot()
	s := HistogramSummary{
		Count:       snap.Count,
		P50Seconds:  round6(snap.Quantile(0.50)),
		P90Seconds:  round6(snap.Quantile(0.90)),
		P99Seconds:  round6(snap.Quantile(0.99)),
		P999Seconds: round6(snap.Quantile(0.999)),
	}
	if snap.Count > 0 {
		s.MeanSeconds = round6(snap.Sum / float64(snap.Count))
	}
	return s
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Stats is a point-in-time snapshot of store state, counters and
// latency histograms.
type Stats struct {
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
	Epoch    uint64 `json:"epoch"`
	Tenants  int    `json:"tenants_active"`
	Replicas int    `json:"replicas_live"`
	Draining bool   `json:"draining"`

	Submitted          uint64 `json:"submitted"`
	Recovered          uint64 `json:"recovered"`
	JournalSkipped     uint64 `json:"journal_skipped,omitempty"`
	JournalCompactions uint64 `json:"journal_compactions,omitempty"`
	Acquired           uint64 `json:"acquired"`
	Completed          uint64 `json:"completed"`
	Failed             uint64 `json:"failed"`
	Canceled           uint64 `json:"canceled"`
	Retried            uint64 `json:"retried"`
	Reclaimed          uint64 `json:"reclaimed"`
	// Fenced counts completions or failures rejected because their
	// lease epoch was stale — each one is a double-execution the fence
	// turned into a no-op.
	Fenced uint64 `json:"fenced"`
	// Shed counts admission rejections by reason.
	Shed map[string]uint64 `json:"shed,omitempty"`
	// BacklogCostSeconds is the estimated cost of the pending backlog.
	BacklogCostSeconds float64 `json:"backlog_cost_seconds"`

	Wait HistogramSummary `json:"wait"`
	Run  HistogramSummary `json:"run"`
	E2E  HistogramSummary `json:"e2e"`
}

func count(c *obs.Counter) uint64 { return uint64(c.Value()) }

// Stats returns a snapshot of the store's gauges, counters and latency
// histograms.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	shed := make(map[string]uint64, 5)
	for _, r := range []ShedReason{ShedDepth, ShedBacklogCost, ShedTenantQuota, ShedTenantRate, ShedDraining} {
		if v := count(s.met.shedFor(r)); v > 0 {
			shed[string(r)] = v
		}
	}
	st := Stats{
		Pending:            s.pending,
		Leased:             len(s.leasedSet),
		Epoch:              s.epoch,
		Tenants:            len(s.ring),
		Replicas:           len(s.replicas),
		Draining:           s.draining || s.closed,
		Submitted:          count(s.met.submitted),
		Recovered:          count(s.met.recovered),
		JournalSkipped:     count(s.met.journalSkipped),
		JournalCompactions: count(s.met.compactions),
		Acquired:           count(s.met.acquired),
		Completed:          count(s.met.completed),
		Failed:             count(s.met.failed),
		Canceled:           count(s.met.canceled),
		Retried:            count(s.met.retried),
		Reclaimed:          count(s.met.reclaimed),
		Fenced:             count(s.met.fenced),
		Shed:               shed,
		BacklogCostSeconds: s.backlogSecs,
	}
	s.mu.Unlock()
	// Histograms snapshot under their own locks; don't hold s.mu.
	st.Wait = summarize(s.met.wait)
	st.Run = summarize(s.met.run)
	st.E2E = summarize(s.met.e2e)
	return st
}
