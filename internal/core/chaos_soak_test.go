package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/compss"
	"repro/internal/ncdf"
)

// soakRules is the fault mix for the end-to-end soak: a transient error
// on every first daily-max attempt (absorbed by the retry budget), one
// panic (absorbed by runSafely + retry), injected latency on the
// cold-wave count, and one crash right before the first validate_store
// checkpoint write — the hardest recovery case, because the year's work
// is done but not durably recorded.
func soakRules() []chaos.Rule {
	return []chaos.Rule{
		{Site: chaos.SiteTask, Op: TaskDailyMax, Attempt: 0, Kind: chaos.Transient},
		{Site: chaos.SiteTask, Op: TaskHWNumber, Attempt: 0, Kind: chaos.PanicKind, Max: 1},
		{Site: chaos.SiteTask, Op: TaskCWNumber, Attempt: chaos.AnyAttempt, Kind: chaos.Latency, Delay: 2 * time.Millisecond},
		{Site: chaos.SiteCheckpoint, Op: TaskValidateStore, Kind: chaos.Crash, Max: 1},
	}
}

// soakOutputNames lists every deterministic artifact a run produces for
// the given years (provenance.json is excluded: it carries timestamps).
func soakOutputNames(years []int) []string {
	var names []string
	for _, y := range years {
		for _, fam := range []string{"heat_wave", "cold_wave"} {
			for _, idx := range []string{"duration", "number", "frequency"} {
				names = append(names, fmt.Sprintf("%s_%s_%d.nc", fam, idx, y))
			}
		}
		names = append(names, fmt.Sprintf("heat_wave_number_%d.ppm", y))
	}
	return append(names, "heat_wave_number_all_years.ppm")
}

// TestChaosSoakCrashResumeByteIdentical is the tentpole soak: the full
// workflow runs under injected faults, dies mid-run before a checkpoint
// write, resumes from the checkpoint file, and must reproduce the clean
// run's outputs byte for byte. It fails if checkpoint replay does not
// actually happen (Recovered == 0), so silently disabling recovery
// cannot pass.
func TestChaosSoakCrashResumeByteIdentical(t *testing.T) {
	const years = 2

	clean := testConfig(t, years)
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	faulted := testConfig(t, years)
	faulted.TaskRetries = 2
	faulted.TaskTimeout = time.Minute
	inj := chaos.NewSeeded(42, soakRules()...)
	faulted.Injector = inj

	ckptPath := filepath.Join(t.TempDir(), "wf.ckpt")
	cp, err := compss.OpenFileCheckpointer(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	faulted.Checkpointer = cp
	if _, err := Run(faulted); err == nil {
		t.Fatal("crash fault did not surface as a run failure")
	} else if !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("crashed run failed with %v, want chaos.ErrCrash", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inj.CountKind(chaos.Crash); got != 1 {
		t.Fatalf("crash faults fired = %d, want 1", got)
	}

	// Resume into the same output directory with the same checkpoint
	// file; the injector still carries the transient/latency rules but
	// its single crash is spent.
	cp2, err := compss.OpenFileCheckpointer(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	faulted.Checkpointer = cp2
	res, err := Run(faulted)
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if res.RuntimeStats.Recovered == 0 {
		t.Fatal("resume replayed nothing from the checkpoint — recovery is load-bearing for this soak")
	}
	if inj.CountKind(chaos.Transient) == 0 {
		t.Error("no transient fault fired; the soak exercised nothing")
	}
	if got := inj.CountKind(chaos.PanicKind); got != 1 {
		t.Errorf("panic faults fired = %d, want 1", got)
	}

	if len(res.Years) != len(cleanRes.Years) {
		t.Fatalf("recovered run produced %d years, clean run %d", len(res.Years), len(cleanRes.Years))
	}
	var yearList []int
	for i, yr := range res.Years {
		cy := cleanRes.Years[i]
		if yr.Year != cy.Year || yr.TrackerTracks != cy.TrackerTracks ||
			yr.HWNumberMean != cy.HWNumberMean || yr.CWNumberMean != cy.CWNumberMean {
			t.Errorf("year %d diverged after crash/resume: got tracks=%d hw=%v cw=%v, clean tracks=%d hw=%v cw=%v",
				cy.Year, yr.TrackerTracks, yr.HWNumberMean, yr.CWNumberMean,
				cy.TrackerTracks, cy.HWNumberMean, cy.CWNumberMean)
		}
		yearList = append(yearList, cy.Year)
	}
	for _, name := range soakOutputNames(yearList) {
		a := canonicalOutput(t, filepath.Join(clean.OutputDir, name))
		b := canonicalOutput(t, filepath.Join(faulted.OutputDir, name))
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between the clean and the crash/resumed run", name)
		}
	}
}

// canonicalOutput reads an artifact for byte comparison. Maps compare
// raw. NetCDF-like exports are re-serialized without the cube_id and
// provenance attributes first: both carry run-scoped identity (engine
// cube counters and operator lineage over them) that legitimately
// differs across executions — the NetCDF "history" attribute problem.
// Everything else, dims, data and science metadata, must match exactly.
func canonicalOutput(t *testing.T, path string) []byte {
	t.Helper()
	if filepath.Ext(path) != ".nc" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("output missing: %v", err)
		}
		return b
	}
	ds, err := ncdf.ReadFile(path)
	if err != nil {
		t.Fatalf("output missing or unreadable: %v", err)
	}
	delete(ds.Attrs, "cube_id")
	delete(ds.Attrs, "provenance")
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosTransientFaultsOnlyStillSucceeds runs the workflow under
// transient-only faults with no checkpointer at all: retries alone must
// carry it to a clean finish.
func TestChaosTransientFaultsOnlyStillSucceeds(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.TaskRetries = 2
	inj := chaos.NewSeeded(7,
		chaos.Rule{Site: chaos.SiteTask, Op: TaskImportYear, Attempt: 0, Kind: chaos.Transient},
		chaos.Rule{Site: chaos.SiteTask, Op: TaskTCInference, Attempt: 0, Kind: chaos.Transient},
	)
	cfg.Injector = inj
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("transient faults with retry budget must not fail the run: %v", err)
	}
	if inj.CountKind(chaos.Transient) < 2 {
		t.Errorf("transient faults fired = %d, want >= 2", inj.CountKind(chaos.Transient))
	}
	if len(res.Years) != 1 {
		t.Fatalf("years = %d, want 1", len(res.Years))
	}
}
