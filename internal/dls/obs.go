package dls

import "repro/internal/obs"

// dlsMetrics holds the service's instruments. With no registry they are
// detached no-ops and the provenance log stays authoritative.
type dlsMetrics struct {
	copies  *obs.Counter
	retries *obs.Counter
	bytes   *obs.Counter
}

func newDLSMetrics(reg *obs.Registry) *dlsMetrics {
	return &dlsMetrics{
		copies: reg.Counter("dls_copies_total",
			"Verified file copies completed by the Data Logistics Service."),
		retries: reg.Counter("dls_copy_retries_total",
			"Copy attempts retried after a transient failure or checksum mismatch."),
		bytes: reg.Counter("dls_bytes_copied_total",
			"Bytes landed by verified copies."),
	}
}

// SetMetrics attaches the service's instruments to reg. Call before the
// first stage-in; passing nil detaches them.
func (s *Service) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = newDLSMetrics(reg)
}

// PrimeMetrics registers the DLS metric families on reg so a scrape
// shows the full surface before any pipeline runs.
func PrimeMetrics(reg *obs.Registry) { newDLSMetrics(reg) }
