package datacube

import (
	"math"
	"testing"
)

func apply(t *testing.T, name string, row []float32, params ...float64) float64 {
	t.Helper()
	op, ok := LookupRowOp(name)
	if !ok {
		t.Fatalf("op %q missing", name)
	}
	return op(row, params)
}

func TestBasicReductions(t *testing.T) {
	row := []float32{3, 1, 4, 1, 5}
	if v := apply(t, "max", row); v != 5 {
		t.Fatalf("max = %v", v)
	}
	if v := apply(t, "min", row); v != 1 {
		t.Fatalf("min = %v", v)
	}
	if v := apply(t, "sum", row); v != 14 {
		t.Fatalf("sum = %v", v)
	}
	if v := apply(t, "avg", row); v != 2.8 {
		t.Fatalf("avg = %v", v)
	}
	std := apply(t, "std", row)
	if math.Abs(std-1.6) > 1e-9 {
		t.Fatalf("std = %v", std)
	}
}

func TestEmptyRowReductions(t *testing.T) {
	if !math.IsNaN(apply(t, "avg", nil)) || !math.IsNaN(apply(t, "std", nil)) {
		t.Fatal("avg/std of empty row should be NaN")
	}
	if !math.IsInf(apply(t, "max", nil), -1) {
		t.Fatal("max of empty row should be -Inf")
	}
}

func TestCountAboveBelow(t *testing.T) {
	row := []float32{-2, 0, 1, 3, 5}
	if v := apply(t, "count_above", row, 0); v != 3 {
		t.Fatalf("count_above(0) = %v", v)
	}
	if v := apply(t, "count_below", row, 0); v != 1 {
		t.Fatalf("count_below(0) = %v", v)
	}
	// default threshold 0 when params omitted
	if v := apply(t, "count_above", row); v != 3 {
		t.Fatalf("count_above() = %v", v)
	}
}

func TestLongestRun(t *testing.T) {
	row := []float32{0, 6, 7, 8, 0, 6, 6, 0}
	if v := apply(t, "longest_run_above", row, 5); v != 3 {
		t.Fatalf("longest_run_above = %v", v)
	}
	if v := apply(t, "longest_run_above", row, 100); v != 0 {
		t.Fatalf("longest_run_above high = %v", v)
	}
	cold := []float32{0, -6, -7, 0, -6, -6, -6, -6}
	if v := apply(t, "longest_run_below", cold, -5); v != 4 {
		t.Fatalf("longest_run_below = %v", v)
	}
}

func TestLongestRunAtTail(t *testing.T) {
	row := []float32{0, 0, 9, 9, 9, 9}
	if v := apply(t, "longest_run_above", row, 5); v != 4 {
		t.Fatalf("tail run = %v", v)
	}
}

func TestCountRuns(t *testing.T) {
	// runs above 5: [6 7] (len 2), [8] (len 1), [9 9 9] (len 3)
	row := []float32{6, 7, 0, 8, 0, 9, 9, 9}
	if v := apply(t, "count_runs_above", row, 5, 2); v != 2 {
		t.Fatalf("count_runs_above(minlen=2) = %v", v)
	}
	if v := apply(t, "count_runs_above", row, 5, 1); v != 3 {
		t.Fatalf("count_runs_above(minlen=1) = %v", v)
	}
	if v := apply(t, "count_runs_above", row, 5, 4); v != 0 {
		t.Fatalf("count_runs_above(minlen=4) = %v", v)
	}
	cold := []float32{-6, -7, 0, -8, -8, -8}
	if v := apply(t, "count_runs_below", cold, -5, 2); v != 2 {
		t.Fatalf("count_runs_below = %v", v)
	}
}

func TestCountRunsTailCounted(t *testing.T) {
	row := []float32{0, 9, 9}
	if v := apply(t, "count_runs_above", row, 5, 2); v != 1 {
		t.Fatalf("tail run not counted: %v", v)
	}
}

func TestQuantile(t *testing.T) {
	row := []float32{1, 2, 3, 4, 5}
	if v := apply(t, "quantile", row, 0.5); v != 3 {
		t.Fatalf("median = %v", v)
	}
	if v := apply(t, "quantile", row, 0); v != 1 {
		t.Fatalf("q0 = %v", v)
	}
	if v := apply(t, "quantile", row, 1); v != 5 {
		t.Fatalf("q1 = %v", v)
	}
	if v := apply(t, "quantile", row, 0.25); v != 2 {
		t.Fatalf("q25 = %v", v)
	}
	if !math.IsNaN(apply(t, "quantile", nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestRegisterRowOpDuplicate(t *testing.T) {
	if err := RegisterRowOp("max", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterRowOp("custom_test_op", func(row []float32, _ []float64) float64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	if op, ok := LookupRowOp("custom_test_op"); !ok || op(nil, nil) != 42 {
		t.Fatal("custom op not registered")
	}
}

func TestRowOpNamesSorted(t *testing.T) {
	names := RowOpNames()
	if len(names) < 10 {
		t.Fatalf("only %d ops registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
