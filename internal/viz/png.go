package viz

import (
	"image"
	"image/color"
	"image/png"
	"os"

	"repro/internal/grid"
)

// WritePNG renders the field as a PNG image through a palette, north
// up, with an optional integer upscale factor for small grids. lo==hi
// auto-scales to the data range.
func WritePNG(path string, f *grid.Field, lo, hi float64, pal Palette, scale int) error {
	if pal == nil {
		pal = Heat
	}
	if scale < 1 {
		scale = 1
	}
	norm := normalize(f, lo, hi)
	g := f.Grid
	img := image.NewNRGBA(image.Rect(0, 0, g.NLon*scale, g.NLat*scale))
	for i := 0; i < g.NLat; i++ {
		row := g.NLat - 1 - i // north at top
		for j := 0; j < g.NLon; j++ {
			r, gg, b := pal(norm(i, j))
			c := color.NRGBA{R: r, G: gg, B: b, A: 255}
			for di := 0; di < scale; di++ {
				for dj := 0; dj < scale; dj++ {
					img.SetNRGBA(j*scale+dj, row*scale+di, c)
				}
			}
		}
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(out, img); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// OverlayPNG renders the field with point markers (e.g. TC detections)
// stamped as small crosses in the given color.
func OverlayPNG(path string, f *grid.Field, lo, hi float64, pal Palette, scale int, markers []Marker) error {
	if pal == nil {
		pal = Heat
	}
	if scale < 1 {
		scale = 1
	}
	norm := normalize(f, lo, hi)
	g := f.Grid
	w, h := g.NLon*scale, g.NLat*scale
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for i := 0; i < g.NLat; i++ {
		row := g.NLat - 1 - i
		for j := 0; j < g.NLon; j++ {
			r, gg, b := pal(norm(i, j))
			c := color.NRGBA{R: r, G: gg, B: b, A: 255}
			for di := 0; di < scale; di++ {
				for dj := 0; dj < scale; dj++ {
					img.SetNRGBA(j*scale+dj, row*scale+di, c)
				}
			}
		}
	}
	mark := color.NRGBA{R: 0, G: 0, B: 0, A: 255}
	for _, m := range markers {
		i, j := g.CellOf(m.Lat, m.Lon)
		cx := j*scale + scale/2
		cy := (g.NLat-1-i)*scale + scale/2
		for d := -2 * scale; d <= 2*scale; d++ {
			setIf(img, cx+d, cy, mark, w, h)
			setIf(img, cx, cy+d, mark, w, h)
		}
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(out, img); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func setIf(img *image.NRGBA, x, y int, c color.NRGBA, w, h int) {
	if x >= 0 && x < w && y >= 0 && y < h {
		img.SetNRGBA(x, y, c)
	}
}
