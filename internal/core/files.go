package core

import (
	"repro/internal/ncdf"
)

// readIndexVariable reads one exported index file's payload.
func readIndexVariable(path, varName string) (*ncdf.Dataset, []float32, error) {
	ds, v, err := ncdf.ReadVariableFile(path, varName)
	if err != nil {
		return nil, nil, err
	}
	return ds, v.Data, nil
}
