// Package chaos is a seeded, fully deterministic fault injector for the
// runtime layers of the workflow stack. The paper's central robustness
// claim — per-task fault tolerance plus task-level checkpointing lets a
// failed climate workflow recover without recomputing finished work
// (Ejarque et al. 2020; Vergés et al. 2023) — is only believable if the
// failure paths are as tested as the fast paths. This package makes
// faults first-class test inputs: the task runtime (internal/compss),
// the data logistics copies (internal/dls) and the federation transfers
// (internal/multisite) each consult an Injector at well-known sites and
// obey whatever fault it decides.
//
// Determinism contract: a decision is a pure function of
// (seed, rule index, site, op, attempt). Two runs with the same seed and
// the same decision points inject the same faults regardless of
// goroutine interleaving. The one exception is Rule.Max, which bounds a
// rule's total injections with a first-come counter; for exact
// reproducible triggers combine Max with a fully qualified match
// (Site + Op + Attempt) so only one decision point can ever hit it.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"time"
)

// Site names an injection point class. Each integration layer consults
// the injector with its own site constant, so one rule set can target
// (or spare) individual layers.
type Site string

// Injection sites wired into the stack.
const (
	// SiteTask is consulted before every task attempt in the compss
	// runtime; op is the task name.
	SiteTask Site = "compss.task"
	// SiteCheckpoint is consulted before a successful task's outputs are
	// recorded; a Crash fault here simulates the process dying after the
	// work but before the checkpoint write (the hardest recovery case).
	SiteCheckpoint Site = "compss.checkpoint"
	// SiteCopy is consulted before every verified file copy in the data
	// logistics service; op is "dataset/relpath".
	SiteCopy Site = "dls.copy"
	// SiteTransfer is consulted before every federation transfer attempt;
	// op is the dataset name.
	SiteTransfer Site = "multisite.transfer"
	// SiteLease is consulted by the execstore lease sweeper for every
	// held lease; op is the holding replica's ID and attempt is the
	// task's attempt count. A Transient fault force-expires the lease
	// immediately (the holder's clock is skewed slow: it believes the
	// lease is live while the store has already reclaimed the task, so
	// its eventual completion is fenced out); a Latency fault extends
	// the expiry check by Delay (the holder's clock is skewed fast).
	SiteLease Site = "execstore.lease"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// None means no fault: proceed normally.
	None Kind = iota
	// Transient is an error a retry can clear.
	Transient
	// PermanentKind is an error that must not consume the retry budget.
	PermanentKind
	// Latency delays the operation by Fault.Delay before it proceeds
	// (and, for deadline-bearing ops, counts against the deadline).
	Latency
	// PanicKind makes the operation panic instead of returning.
	PanicKind
	// Crash simulates the whole process dying at the decision point:
	// nothing after it is durably recorded.
	Crash
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case PermanentKind:
		return "permanent"
	case Latency:
		return "latency"
	case PanicKind:
		return "panic"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base cause of every injected error fault.
var ErrInjected = errors.New("chaos: injected fault")

// ErrCrash is the cause reported when a Crash fault fires; drivers
// detect it with errors.Is and re-run with the same checkpointer to
// exercise recovery.
var ErrCrash = errors.New("chaos: injected crash")

// permanentError marks an error as non-retryable. The marker is shared
// across packages so every retry loop in the stack skips its budget for
// the same typed reason.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so retry loops fail immediately instead of
// burning their budget.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Fault is one injection decision. The zero value means "no fault".
type Fault struct {
	Kind  Kind
	Delay time.Duration // for Latency
	Err   error         // optional specific cause for error kinds
}

// Error materializes the fault as an error: transient faults wrap
// ErrInjected, permanent faults additionally carry the Permanent
// marker. It returns nil for non-error kinds.
func (f Fault) Error() error {
	switch f.Kind {
	case Transient:
		if f.Err != nil {
			return fmt.Errorf("%w: %w", ErrInjected, f.Err)
		}
		return fmt.Errorf("%w (transient)", ErrInjected)
	case PermanentKind:
		if f.Err != nil {
			return Permanent(fmt.Errorf("%w: %w", ErrInjected, f.Err))
		}
		return Permanent(fmt.Errorf("%w (permanent)", ErrInjected))
	default:
		return nil
	}
}

// Injector decides whether a fault fires at a decision point. A nil
// Injector everywhere means production behaviour; implementations must
// be safe for concurrent use.
type Injector interface {
	Decide(site Site, op string, attempt int) Fault
}

// Rule is one match-and-inject clause of a seeded injector. Zero-value
// fields match anything: empty Site matches every site, empty Op every
// operation (otherwise substring match), Attempt < 0 every attempt.
type Rule struct {
	Site    Site
	Op      string
	Attempt int // exact attempt to hit; -1 (or AnyAttempt) = any
	Kind    Kind
	// Prob is the injection probability per matching decision; values
	// >= 1 (or 0, for convenience) always fire.
	Prob float64
	// Max bounds this rule's total injections; 0 = unlimited.
	Max int
	// Delay is the injected latency for Kind == Latency.
	Delay time.Duration
	// Err overrides the injected error cause.
	Err error
}

// AnyAttempt marks a rule as attempt-independent.
const AnyAttempt = -1

func (r Rule) matches(site Site, op string, attempt int) bool {
	if r.Site != "" && r.Site != site {
		return false
	}
	if r.Op != "" && !strings.Contains(op, r.Op) {
		return false
	}
	if r.Attempt >= 0 && r.Attempt != attempt {
		return false
	}
	return true
}

// Event records one injected fault, for assertions and soak reports.
type Event struct {
	Site    Site
	Op      string
	Attempt int
	Kind    Kind
	Rule    int // index of the firing rule
}

// SeededInjector is the deterministic rule-driven Injector. Create with
// NewSeeded.
type SeededInjector struct {
	seed  int64
	rules []Rule

	mu   sync.Mutex
	hits []int
	log  []Event
}

// NewSeeded builds an injector whose probabilistic decisions are a pure
// function of seed and decision point (see the package comment for the
// determinism contract). Rules are evaluated in order; the first firing
// rule wins.
func NewSeeded(seed int64, rules ...Rule) *SeededInjector {
	return &SeededInjector{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		hits:  make([]int, len(rules)),
	}
}

// Decide implements Injector.
func (s *SeededInjector) Decide(site Site, op string, attempt int) Fault {
	for i, r := range s.rules {
		if !r.matches(site, op, attempt) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && s.roll(i, site, op, attempt) >= r.Prob {
			continue
		}
		s.mu.Lock()
		if r.Max > 0 && s.hits[i] >= r.Max {
			s.mu.Unlock()
			continue
		}
		s.hits[i]++
		s.log = append(s.log, Event{Site: site, Op: op, Attempt: attempt, Kind: r.Kind, Rule: i})
		s.mu.Unlock()
		return Fault{Kind: r.Kind, Delay: r.Delay, Err: r.Err}
	}
	return Fault{}
}

// roll returns a uniform value in [0, 1) derived only from the seed and
// the decision point, so concurrent interleavings cannot change it.
func (s *SeededInjector) roll(rule int, site Site, op string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s|%d", s.seed, rule, site, op, attempt)
	// 53 mantissa bits give a uniform float in [0, 1).
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// Events returns a copy of every injected fault so far.
func (s *SeededInjector) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.log...)
}

// Injected reports the total number of faults fired.
func (s *SeededInjector) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// CountKind reports how many faults of one kind fired.
func (s *SeededInjector) CountKind(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.log {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// ExpectedHits estimates how many decisions out of n a probability p
// rule fires for — a helper for sizing soak workloads (binomial mean,
// rounded).
func ExpectedHits(n int, p float64) int {
	return int(math.Round(float64(n) * p))
}
