package esm

import (
	"fmt"
	"math"
)

// DayDiagnostics are the online per-day global indicators the paper's
// §3 describes being computed during the model run itself ("part of
// the analysis is already performed online during model simulations
// with the goal of pre-computing some relevant statistics or simple
// indicators useful for validating the results (e.g., diagnostics)").
// Spatial means are area-weighted by cos(latitude).
type DayDiagnostics struct {
	Year, DayOfYear int
	// GlobalMeanT is the area-weighted mean near-surface temperature [K].
	GlobalMeanT float64
	// GlobalMeanSST is the area-weighted mean sea-surface temperature [K].
	GlobalMeanSST float64
	// IceArea is the area-weighted mean sea-ice fraction [0..1].
	IceArea float64
	// TOANet is the area-weighted mean top-of-atmosphere net flux
	// (FSNT − FLNT) [W/m²], the model's energy-balance indicator.
	TOANet float64
	// MinPSL is the global minimum sea-level pressure [Pa] (storm
	// activity indicator).
	MinPSL float64
	// MaxWind is the global maximum 850 hPa wind speed [m/s].
	MaxWind float64
	// MeanPrecip is the area-weighted mean precipitation [mm/day].
	MeanPrecip float64
}

// Diagnose computes the day's diagnostics from its output fields,
// averaging the 6-hourly steps.
func Diagnose(d *DayOutput) (DayDiagnostics, error) {
	out := DayDiagnostics{Year: d.Year, DayOfYear: d.DayOfYear, MinPSL: math.Inf(1)}
	g := d.Grid
	// per-row area weights
	weights := make([]float64, g.NLat)
	var wsum float64
	for i := 0; i < g.NLat; i++ {
		weights[i] = math.Cos(g.Lat(i) * math.Pi / 180)
		wsum += weights[i] * float64(g.NLon)
	}
	steps := float64(len(d.Steps))
	for s := range d.Steps {
		var gerr error
		get := func(name string) []float32 {
			f, err := d.Field(s, name)
			if err != nil && gerr == nil {
				gerr = err
			}
			if f == nil {
				return nil
			}
			return f.Data
		}
		tre, sst, ice := get("TREFHT"), get("SST"), get("ICEFRAC")
		fsnt, flnt, psl := get("FSNT"), get("FLNT"), get("PSL")
		u, v, pr := get("U850"), get("V850"), get("PRECT")
		if gerr != nil {
			return out, gerr
		}
		var sumT, sumSST, sumIce, sumNet, sumPr float64
		for i := 0; i < g.NLat; i++ {
			w := weights[i]
			base := i * g.NLon
			for j := 0; j < g.NLon; j++ {
				idx := base + j
				sumT += w * float64(tre[idx])
				sumSST += w * float64(sst[idx])
				sumIce += w * float64(ice[idx])
				sumNet += w * (float64(fsnt[idx]) - float64(flnt[idx]))
				sumPr += w * float64(pr[idx])
				if p := float64(psl[idx]); p < out.MinPSL {
					out.MinPSL = p
				}
				if sp := math.Hypot(float64(u[idx]), float64(v[idx])); sp > out.MaxWind {
					out.MaxWind = sp
				}
			}
		}
		out.GlobalMeanT += sumT / wsum / steps
		out.GlobalMeanSST += sumSST / wsum / steps
		out.IceArea += sumIce / wsum / steps
		out.TOANet += sumNet / wsum / steps
		out.MeanPrecip += sumPr / wsum / steps
	}
	return out, nil
}

// CheckDiagnostics validates a day's indicators against hard physical
// plausibility bounds — the in-run sanity gate operational ESM
// workflows apply before trusting output.
func CheckDiagnostics(d DayDiagnostics) error {
	checks := []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		{"global mean T", d.GlobalMeanT, 250, 310},
		{"global mean SST", d.GlobalMeanSST, 250, 310},
		{"ice area", d.IceArea, 0, 1},
		{"TOA net flux", d.TOANet, -300, 300},
		{"min PSL", d.MinPSL, 85000, 105000},
		{"max wind", d.MaxWind, 0, 150},
		{"mean precip", d.MeanPrecip, 0, 50},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || c.v < c.lo || c.v > c.hi {
			return fmt.Errorf("esm: diagnostic %s = %v outside [%v, %v] (year %d day %d)",
				c.name, c.v, c.lo, c.hi, d.Year, d.DayOfYear)
		}
	}
	return nil
}
