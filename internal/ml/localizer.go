package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/esm"
	"repro/internal/grid"
)

// Channels are the climate variables stacked as CNN input planes, the
// paper's "set of input climate variables simulated by ESM (i.e.,
// temperature, sea pressure level, wind speed, vorticity)".
var Channels = []string{"PSL", "WSPD", "VORT850", "T500"}

// Localizer is the pre-trained TC patch localizer plus its
// preprocessing contract (patch size and channel stack). Inference
// goes through a lazily compiled engine (infer.go) unless configured
// with Params{Reference: true}; training always uses the layer path.
type Localizer struct {
	Net    *Network
	PatchH int
	PatchW int

	mu     sync.Mutex
	prm    Params
	eng    *engine
	engErr error
	gen    uint64 // successful SwapWeights count
}

// Configure sets the inference-engine parameters (worker count,
// batching, observability, reference escape hatch). It drops any
// previously compiled engine, so it also serves as "recompile after
// swapping Net".
func (l *Localizer) Configure(p Params) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prm = p
	l.eng = nil
	l.engErr = nil
}

// Compiled reports whether inference runs through the compiled engine
// (false in reference mode or when the network cannot be lowered).
// Callers that share one Localizer across goroutines must clone the
// network when this is false: the layer path caches per-call state.
func (l *Localizer) Compiled() bool { return l.engineOrNil() != nil }

// engineOrNil returns the compiled engine, lazily building it, or nil
// when the localizer is in reference mode or the network cannot be
// lowered (custom layer stacks keep working through the layer path).
func (l *Localizer) engineOrNil() *engine {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prm.Reference {
		return nil
	}
	if l.eng == nil && l.engErr == nil {
		l.eng, l.engErr = newEngine(l, l.prm)
	}
	return l.eng
}

// SwapWeights atomically replaces the localizer's network — the model
// hot-swap of the ML-in-the-loop pattern: an online trainer improves a
// copy of the weights while inference runs, then publishes them here
// without stopping the sweep. In-flight batches keep the compiled plan
// (and therefore exactly the weights) they started with — a swap never
// tears a batch — while every batch acquired afterwards runs the new
// weights. net must fit the localizer's patch geometry; when the
// compiled engine is active the swap fails (leaving the old weights in
// effect) if net cannot be lowered.
//
// Ownership of net transfers to the localizer: the caller must not
// train or mutate it afterwards. Train a clone and swap again instead.
func (l *Localizer) SwapWeights(net *Network) error {
	if net == nil || len(net.Layers) == 0 {
		return fmt.Errorf("ml: SwapWeights: empty network")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eng != nil {
		plan, err := lower(net, l.PatchH, l.PatchW)
		if err != nil {
			return err
		}
		l.eng.plan.Store(plan)
	} else {
		// Engine not built yet (or previously uncompilable): clear the
		// cached compile error so the next inference lowers the new net.
		l.engErr = nil
	}
	l.Net = net
	l.gen++
	return nil
}

// WeightsGeneration counts successful SwapWeights calls. Batches
// started after the counter reads g run weights of generation >= g.
func (l *Localizer) WeightsGeneration() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// refNet snapshots the current network for a reference-path pass, so a
// concurrent SwapWeights flips between consistent weight sets instead
// of racing the sweep mid-patch.
func (l *Localizer) refNet() *Network {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.Net
}

// NewLocalizer builds an untrained localizer for the given patch size.
func NewLocalizer(patchH, patchW int, seed int64) (*Localizer, error) {
	net, err := NewCNN(len(Channels), patchH, patchW, seed)
	if err != nil {
		return nil, err
	}
	return &Localizer{Net: net, PatchH: patchH, PatchW: patchW}, nil
}

// Prediction is the CNN head output for one patch.
type Prediction struct {
	// Presence is the TC probability in (0,1).
	Presence float64
	// Row, Col are the predicted center coordinates as fractions of the
	// patch extent, valid when Presence is high.
	Row, Col float64
}

// Predict runs one preprocessed patch tensor through the network,
// via a pooled engine session when the network is compilable.
func (l *Localizer) Predict(x *Tensor) Prediction {
	if e := l.engineOrNil(); e != nil {
		s := e.acquire()
		defer e.release(s)
		return s.PredictBatch(x)[0]
	}
	return l.predictReference(x)
}

// predictReference is the layer-by-layer forward pass — the numerical
// reference the compiled engine is tested against bit-for-bit.
func (l *Localizer) predictReference(x *Tensor) Prediction {
	return predictNet(l.refNet(), x)
}

// predictNet runs one patch through net's layer stack.
func predictNet(net *Network, x *Tensor) Prediction {
	out := net.Forward(x)
	return Prediction{
		Presence: Sigmoid(out.Data[0]),
		Row:      clamp01(out.Data[1]),
		Col:      clamp01(out.Data[2]),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Sample is one labelled training patch.
type Sample struct {
	X     *Tensor
	HasTC bool
	// Row, Col are the true center fractions (only meaningful when
	// HasTC).
	Row, Col float64
}

// prepFields validates the channel stack of one instantaneous field
// set and computes the per-channel standardization statistics (§5.4
// feature scaling) in a single Welford pass — no full-field copy. The
// returned fields are ordered like Channels; the actual scaling
// happens on the way into the patch tensor (loadPatch /
// InferSession.loadPatchRange).
func prepFields(fields map[string]*grid.Field, patchH, patchW int) ([]*grid.Field, []fieldMoments, error) {
	chF := make([]*grid.Field, len(Channels))
	for ci, name := range Channels {
		f, ok := fields[name]
		if !ok {
			return nil, nil, fmt.Errorf("ml: missing channel field %q", name)
		}
		chF[ci] = f
	}
	fg := chF[0].Grid
	for ci, f := range chF[1:] {
		if f.Grid != fg {
			return nil, nil, fmt.Errorf("ml: channel %q grid %dx%d does not match %q grid %dx%d",
				Channels[ci+1], f.Grid.NLat, f.Grid.NLon, Channels[0], fg.NLat, fg.NLon)
		}
	}
	if patchH > fg.NLat || patchW > fg.NLon {
		return nil, nil, fmt.Errorf("ml: patch %dx%d larger than grid %dx%d", patchH, patchW, fg.NLat, fg.NLon)
	}
	stats := make([]fieldMoments, len(chF))
	for ci, f := range chF {
		stats[ci] = fieldStats(f.Data)
	}
	return chF, stats, nil
}

// ChannelFields extracts and derives the localizer input fields from a
// model step (WSPD is derived from the 850 hPa wind components).
func ChannelFields(day *esm.DayOutput, step int) (map[string]*grid.Field, error) {
	out := make(map[string]*grid.Field, len(Channels))
	for _, name := range []string{"PSL", "VORT850", "T500"} {
		f, err := day.Field(step, name)
		if err != nil {
			return nil, err
		}
		out[name] = f
	}
	u, err := day.Field(step, "U850")
	if err != nil {
		return nil, err
	}
	v, err := day.Field(step, "V850")
	if err != nil {
		return nil, err
	}
	w := grid.NewField(u.Grid)
	for i := range w.Data {
		w.Data[i] = float32(math.Hypot(float64(u.Data[i]), float64(v.Data[i])))
	}
	out["WSPD"] = w
	return out, nil
}

// Center is one labelled TC center in grid-cell coordinates.
type Center struct{ Row, Col int }

// SamplesFromFields labels every patch of one instantaneous field set
// against known storm centers: a patch is positive when a center falls
// inside it. This is the label-agnostic core of BuildSamples — callers
// supply centers from seeded ground truth, tracker pseudo-labels, or
// any other source.
func SamplesFromFields(fields map[string]*grid.Field, centers []Center, patchH, patchW int) ([]Sample, error) {
	chF, stats, err := prepFields(fields, patchH, patchW)
	if err != nil {
		return nil, err
	}
	fg := chF[0].Grid
	var out []Sample
	nJ := fg.NLon / patchW
	total := (fg.NLat / patchH) * nJ
	for pi := 0; pi < total; pi++ {
		row0, col0 := (pi/nJ)*patchH, (pi%nJ)*patchW
		x := NewTensor(len(Channels), patchH, patchW)
		loadPatch(x.Data, chF, stats, row0, col0, patchH, patchW)
		s := Sample{X: x}
		for _, c := range centers {
			if c.Row >= row0 && c.Row < row0+patchH && c.Col >= col0 && c.Col < col0+patchW {
				s.HasTC = true
				s.Row = (float64(c.Row-row0) + 0.5) / float64(patchH)
				s.Col = (float64(c.Col-col0) + 0.5) / float64(patchW)
				break
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// BuildSamples labels every patch of one model step against the seeded
// ground truth: positive when a storm center falls inside the patch.
func BuildSamples(day *esm.DayOutput, step int, storms []esm.Cyclone, patchH, patchW int) ([]Sample, error) {
	fields, err := ChannelFields(day, step)
	if err != nil {
		return nil, err
	}
	g := day.Grid
	// active storm centers at this instant
	var centers []Center
	for i := range storms {
		if storms[i].Year != day.Year {
			continue
		}
		if p, ok := storms[i].Active(day.DayOfYear, step); ok {
			ci, cj := g.CellOf(p.Lat, p.Lon)
			centers = append(centers, Center{ci, cj})
		}
	}
	return SamplesFromFields(fields, centers, patchH, patchW)
}

// TrainConfig controls localizer training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// CoordWeight scales the localization loss term; zero means 2.
	CoordWeight float64
	// Balance duplicates positive samples to counter class imbalance.
	Balance bool
}

// Train fits the localizer on samples with BCE (presence) + masked MSE
// (center coordinates) and returns the mean loss per epoch.
func (l *Localizer) Train(samples []Sample, cfg TrainConfig) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("ml: no training samples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.CoordWeight == 0 {
		cfg.CoordWeight = 2
	}
	train := samples
	if cfg.Balance {
		train = balance(samples)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	opt := NewAdam(l.Net, cfg.LR)
	losses := make([]float64, 0, cfg.Epochs)
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		inBatch := 0
		for _, si := range idx {
			epochLoss += trainSample(l.Net, train[si], cfg.CoordWeight)
			inBatch++
			if inBatch == cfg.BatchSize {
				opt.Step(inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(inBatch)
		}
		losses = append(losses, epochLoss/float64(len(train)))
	}
	return losses, nil
}

// trainSample runs one labelled sample forward and backward through
// net, accumulating gradients, and returns its loss — BCE on presence
// plus masked coordinate MSE. Shared by Train and the OnlineTrainer.
func trainSample(net *Network, s Sample, coordWeight float64) float64 {
	out := net.Forward(s.X)
	logit, pr, pc := out.Data[0], out.Data[1], out.Data[2]
	y := 0.0
	if s.HasTC {
		y = 1
	}
	p := Sigmoid(logit)
	// BCE + masked coordinate MSE
	loss := -(y*math.Log(p+1e-12) + (1-y)*math.Log(1-p+1e-12))
	grad := NewTensor(3)
	grad.Data[0] = p - y
	if s.HasTC {
		dr, dc := pr-s.Row, pc-s.Col
		loss += coordWeight * (dr*dr + dc*dc)
		grad.Data[1] = 2 * coordWeight * dr
		grad.Data[2] = 2 * coordWeight * dc
	}
	net.Backward(grad)
	return loss
}

// balance oversamples positives to roughly match negatives.
func balance(samples []Sample) []Sample {
	var pos, neg []Sample
	for _, s := range samples {
		if s.HasTC {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) <= len(pos) {
		return samples
	}
	out := append([]Sample(nil), samples...)
	for len(pos) > 0 && len(out) < len(neg)*2 {
		out = append(out, pos...)
	}
	return out
}

// SamplesFromSimulations generates labelled patches from several
// independent simulated years (one model per seed), giving the training
// set the storm diversity a single run cannot provide — the stand-in
// for the paper's CNN "previously trained on historical data".
func SamplesFromSimulations(cfg esm.Config, seeds []int64, patchH, patchW int) ([]Sample, error) {
	var out []Sample
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		m := esm.NewModel(c)
		gt := m.GroundTruth()
		for {
			d := m.StepDay()
			if d == nil {
				break
			}
			for step := 0; step < esm.StepsPerDay; step += 2 {
				s, err := BuildSamples(d, step, gt.Cyclones, patchH, patchW)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
		}
	}
	return out, nil
}

// Detection is one geo-referenced TC localization (workflow step
// "geo-referencing predicted TC center coordinates onto a global map").
type Detection struct {
	Lat, Lon float64
	Score    float64
}

// DetectStep runs the localizer over every patch of one model step and
// returns detections above the probability threshold, sorted by
// descending score.
func (l *Localizer) DetectStep(day *esm.DayOutput, step int, threshold float64) ([]Detection, error) {
	fields, err := ChannelFields(day, step)
	if err != nil {
		return nil, err
	}
	return l.DetectFields(fields, day.Grid, threshold)
}

// DetectFields is DetectStep on pre-extracted channel fields. With a
// compilable network it runs the batched, parallel engine sweep (safe
// to call from many goroutines on one Localizer); otherwise — or under
// Params{Reference: true} — the sequential layer-by-layer reference.
// Both produce identical detections.
func (l *Localizer) DetectFields(fields map[string]*grid.Field, g grid.Grid, threshold float64) ([]Detection, error) {
	if e := l.engineOrNil(); e != nil {
		return e.detect(l, fields, g, threshold)
	}
	return l.detectFieldsReference(fields, g, threshold)
}

// detectFieldsReference is the per-patch, single-goroutine sweep.
func (l *Localizer) detectFieldsReference(fields map[string]*grid.Field, g grid.Grid, threshold float64) ([]Detection, error) {
	chF, stats, err := prepFields(fields, l.PatchH, l.PatchW)
	if err != nil {
		return nil, err
	}
	nJ := chF[0].Grid.NLon / l.PatchW
	total := (chF[0].Grid.NLat / l.PatchH) * nJ
	x := NewTensor(len(Channels), l.PatchH, l.PatchW)
	// One net snapshot for the whole sweep: a concurrent SwapWeights
	// takes effect at the next call, never mid-sweep.
	net := l.refNet()
	var out []Detection
	for pi := 0; pi < total; pi++ {
		row0, col0 := (pi/nJ)*l.PatchH, (pi%nJ)*l.PatchW
		loadPatch(x.Data, chF, stats, row0, col0, l.PatchH, l.PatchW)
		pred := predictNet(net, x)
		if pred.Presence < threshold {
			continue
		}
		out = append(out, georeference(g, row0, col0, l.PatchH, l.PatchW, pred))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// georeference maps one patch-local prediction onto the global map
// (workflow step "geo-referencing predicted TC center coordinates").
// The latitude index is clamped: pred.Row == 1.0 on the last patch row
// lands exactly on NLat, one past the final cell. Longitude wraps
// because the domain is periodic.
func georeference(g grid.Grid, row0, col0, patchH, patchW int, pred Prediction) Detection {
	ri := int(float64(row0) + pred.Row*float64(patchH))
	if ri >= g.NLat {
		ri = g.NLat - 1
	}
	return Detection{
		Lat:   g.Lat(ri),
		Lon:   g.Lon(int(float64(col0)+pred.Col*float64(patchW)) % g.NLon),
		Score: pred.Presence,
	}
}
