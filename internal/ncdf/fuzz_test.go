package ncdf

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the file decoder: arbitrary bytes must produce an
// error or a dataset — never a panic or a runaway allocation.
func FuzzRead(f *testing.F) {
	// a valid file as the seed
	ds := NewDataset()
	_ = ds.AddDim("lat", 2)
	_ = ds.AddDim("lon", 3)
	ds.Attrs["model"] = String("seed")
	ds.Attrs["year"] = Int(2040)
	ds.Attrs["res"] = Float(0.25)
	_, _ = ds.AddVar("T", []string{"lat", "lon"}, []float32{1, 2, 3, 4, 5, 6})
	var buf bytes.Buffer
	_ = ds.Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("GNC1"))
	f.Add([]byte("GNC1\x00\x00\x00\x00"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})
	// truncations of the valid file
	b := buf.Bytes()
	for _, cut := range []int{4, 8, 12, 20, len(b) - 4} {
		if cut > 0 && cut < len(b) {
			f.Add(b[:cut])
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// a decoded dataset must be internally consistent
		for _, v := range got.Vars {
			if _, err := got.Shape(v); err != nil {
				// dims may legitimately be missing in crafted input; Shape
				// must error, not panic
				continue
			}
		}
	})
}
