// Command cubecli exposes the Ophidia-like datacube engine on the
// command line, both as a server and as a client, mirroring how
// PyOphidia drives a remote Ophidia deployment.
//
// Server:
//
//	cubecli serve -addr 127.0.0.1:8761 -servers 4
//	cubecli serve -addr 127.0.0.1:8761 -cluster -shards 4 -replicas 2
//
// With -cluster the same address serves a sharded, replicated
// coordinator; every client command below works unchanged against it.
//
// Client (against a running server):
//
//	cubecli import -addr ... -var TREFHT <files...>  → prints cube id
//	cubecli op -addr ... -cube cube-1 -apply "x>278 ? 1 : 0"
//	cubecli op -addr ... -cube cube-2 -reduce sum
//	cubecli show -addr ... -cube cube-3 -row 0
//	cubecli list -addr ...
//	cubecli stats -addr ...
//
// Clients negotiate the v2 binary wire protocol and fall back to gob
// against older servers; -codec gob forces a legacy session. The
// server closes idle connections after -idle-timeout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/cubecluster"
	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "import":
		doImport(args)
	case "op":
		doOp(args)
	case "pipe":
		doPipe(args)
	case "show":
		doShow(args)
	case "list":
		doList(args)
	case "stats":
		doStats(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cubecli {serve|import|op|pipe|show|list|stats} [flags]")
	os.Exit(2)
}

// doPipe executes a server-side operator pipeline described as a JSON
// array of steps on stdin (or -steps), e.g.:
//
//	echo '[{"Op":"apply","Expr":"x>5 ? 1 : 0"},{"Op":"reduce","RowOp":"sum"}]' \
//	  | cubecli pipe -cube cube-4
func doPipe(args []string) {
	fs := flag.NewFlagSet("pipe", flag.ExitOnError)
	addClientFlags(fs)
	cubeID := fs.String("cube", "", "source cube id (required)")
	stepsJSON := fs.String("steps", "", "pipeline steps as JSON (default: read stdin)")
	fs.Parse(args)
	if *cubeID == "" {
		log.Fatal("pipe: -cube required")
	}
	raw := []byte(*stepsJSON)
	if len(raw) == 0 {
		var err error
		raw, err = io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
	}
	var steps []cubeserver.PipelineStep
	if err := json.Unmarshal(raw, &steps); err != nil {
		log.Fatalf("pipe: bad steps JSON: %v", err)
	}
	c := dial(fs)
	defer c.Close()
	out, err := remote(c, *cubeID).Pipeline(steps...)
	if err != nil {
		log.Fatal(err)
	}
	printShape(out)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8761", "listen address")
	servers := fs.Int("servers", 4, "in-memory I/O servers")
	frags := fs.Int("frags", 0, "fragments per cube (0 = 2×servers)")
	cluster := fs.Bool("cluster", false, "serve a sharded coordinator instead of one engine")
	shards := fs.Int("shards", 4, "cluster row-range shards (with -cluster)")
	replicas := fs.Int("replicas", 1, "replicas per shard (with -cluster)")
	budget := fs.Int64("budget", 0, "resident-byte budget: demote cold cubes to pyramid stand-ins over this (0 = off; engine mode only)")
	idle := fs.Duration("idle-timeout", 0, "close client connections idle this long (0 = default 2m, negative = never)")
	fs.Parse(args)

	opts := cubeserver.Options{IdleTimeout: *idle}
	var srv *cubeserver.Server
	if *cluster {
		cl, err := cubecluster.NewLocal(cubecluster.Config{
			Shards:   *shards,
			Replicas: *replicas,
			Engine:   datacube.Config{Servers: *servers, FragmentsPerCube: *frags},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		srv, err = cubeserver.ServeOptions(*addr, cl, nil, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("datacube cluster on %s (%d shards × %d replicas, %d I/O servers each)\n",
			srv.Addr(), *shards, *replicas, *servers)
	} else {
		engine := datacube.NewEngine(datacube.Config{Servers: *servers, FragmentsPerCube: *frags})
		defer engine.Close()
		var err error
		if *budget > 0 {
			srv, err = cubeserver.ServeOptions(*addr, cubeserver.ResidentDispatcher(engine, *budget, nil), nil, opts)
		} else {
			srv, err = cubeserver.ServeOptions(*addr, cubeserver.EngineDispatcher(engine), nil, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("datacube server on %s (%d I/O servers)\n", srv.Addr(), *servers)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}

// addClientFlags registers the flags every client command shares.
func addClientFlags(fs *flag.FlagSet) {
	fs.String("addr", "127.0.0.1:8761", "server address")
	fs.String("codec", "auto", "wire codec: auto negotiates v2 with gob fallback; gob forces a legacy session")
}

func dial(fs *flag.FlagSet) *cubeserver.Client {
	addr := fs.Lookup("addr").Value.String()
	var c *cubeserver.Client
	var err error
	switch codec := fs.Lookup("codec").Value.String(); codec {
	case "auto":
		c, err = cubeserver.Dial(addr)
	case "gob":
		c, err = cubeserver.DialGob(addr)
	default:
		log.Fatalf("unknown -codec %q (want auto or gob)", codec)
	}
	if err != nil {
		log.Fatalf("connect %s: %v", addr, err)
	}
	return c
}

func doImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	addClientFlags(fs)
	varName := fs.String("var", "TREFHT", "variable to import")
	implicit := fs.String("implicit", "time", "implicit dimension")
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("import: need at least one file")
	}
	c := dial(fs)
	defer c.Close()
	cube, err := c.ImportFiles(fs.Args(), *varName, *implicit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s rows=%d implicit=%d fragments=%d\n",
		cube.ID(), cube.Shape.Rows, cube.Shape.ImplicitLen, cube.Shape.Fragments)
}

func doOp(args []string) {
	fs := flag.NewFlagSet("op", flag.ExitOnError)
	addClientFlags(fs)
	cubeID := fs.String("cube", "", "cube id (required)")
	apply := fs.String("apply", "", "elementwise expression over x")
	reduce := fs.String("reduce", "", "row reduction op")
	group := fs.Int("group", 0, "reduce group size (0 = whole row)")
	params := fs.String("params", "", "comma-separated reduction parameters")
	subset := fs.String("subset", "", "implicit range lo:hi")
	export := fs.String("export", "", "server-side export path")
	del := fs.Bool("delete", false, "delete the cube")
	fs.Parse(args)
	if *cubeID == "" {
		log.Fatal("op: -cube required")
	}
	c := dial(fs)
	defer c.Close()
	cube := remote(c, *cubeID)

	var ps []float64
	if *params != "" {
		for _, p := range strings.Split(*params, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &v); err != nil {
				log.Fatalf("bad parameter %q", p)
			}
			ps = append(ps, v)
		}
	}
	switch {
	case *apply != "":
		out, err := cube.Apply(*apply)
		if err != nil {
			log.Fatal(err)
		}
		printShape(out)
	case *reduce != "" && *group > 0:
		out, err := cube.ReduceGroup(*reduce, *group, ps...)
		if err != nil {
			log.Fatal(err)
		}
		printShape(out)
	case *reduce != "":
		out, err := cube.Reduce(*reduce, ps...)
		if err != nil {
			log.Fatal(err)
		}
		printShape(out)
	case *subset != "":
		var lo, hi int
		if _, err := fmt.Sscanf(*subset, "%d:%d", &lo, &hi); err != nil {
			log.Fatalf("bad subset %q", *subset)
		}
		out, err := cube.Subset(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		printShape(out)
	case *export != "":
		if err := cube.Export(*export); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported %s to %s\n", *cubeID, *export)
	case *del:
		if err := cube.Delete(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deleted %s\n", *cubeID)
	default:
		log.Fatal("op: nothing to do (use -apply/-reduce/-subset/-export/-delete)")
	}
}

func remote(c *cubeserver.Client, id string) *cubeserver.RemoteCube {
	return cubeserver.NewRemoteCube(c, id)
}

func printShape(r *cubeserver.RemoteCube) {
	fmt.Printf("%s rows=%d implicit=%d\n", r.ID(), r.Shape.Rows, r.Shape.ImplicitLen)
}

func doShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	addClientFlags(fs)
	cubeID := fs.String("cube", "", "cube id")
	row := fs.Int("row", 0, "row to print")
	fs.Parse(args)
	c := dial(fs)
	defer c.Close()
	vals, err := remote(c, *cubeID).Row(*row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s[%d] = %v\n", *cubeID, *row, vals)
}

func doList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	addClientFlags(fs)
	fs.Parse(args)
	c := dial(fs)
	defer c.Close()
	ids, err := c.List()
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range ids {
		fmt.Println(id)
	}
}

func doStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addClientFlags(fs)
	fs.Parse(args)
	c := dial(fs)
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file_reads=%d cells=%d ops=%d fragment_tasks=%d\n",
		st.FileReads, st.CellsProcessed, st.Ops, st.FragmentTasks)
}
