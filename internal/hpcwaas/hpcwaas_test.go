package hpcwaas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dls"
	"repro/internal/imagebuilder"
	"repro/internal/tosca"
)

func demoEntry(name string, app AppFunc) Entry {
	if app == nil {
		app = func(params map[string]string) (map[string]string, error) {
			return map[string]string{"echo": params["msg"]}, nil
		}
	}
	return Entry{
		Name:        name,
		Version:     "1.0",
		Description: "test workflow",
		Topology:    tosca.ClimateTopology("zeus"),
		App:         app,
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(demoEntry("wf", nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("wf"); !ok {
		t.Fatal("lookup failed")
	}
	if got := r.List(); len(got) != 1 || got[0] != "wf" {
		t.Fatalf("list = %v", got)
	}
	// replace = new version
	e := demoEntry("wf", nil)
	e.Version = "2.0"
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup("wf")
	if got.Version != "2.0" {
		t.Fatalf("version = %q", got.Version)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	e := demoEntry("", nil)
	if err := r.Register(e); err == nil {
		t.Fatal("anonymous entry accepted")
	}
	e = demoEntry("x", nil)
	e.App = nil
	if err := r.Register(e); err == nil {
		t.Fatal("app-less entry accepted")
	}
	e = demoEntry("x", nil)
	e.Topology = nil
	if err := r.Register(e); err == nil {
		t.Fatal("topology-less entry accepted")
	}
	e = demoEntry("x", nil)
	e.Topology = &tosca.Topology{Name: "bad", Nodes: []tosca.Node{{Name: "a", HostedOn: "ghost"}}}
	if err := r.Register(e); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func newTestDeployer(t *testing.T) *Deployer {
	t.Helper()
	d := NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"})
	// provide the climatology pipeline the topology references
	src := t.TempDir()
	if err := os.WriteFile(filepath.Join(src, "clim.nc"), []byte("CLIM"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.DLS.Catalog.Register(dls.Dataset{Name: "climatology", Root: src, Files: []string{"clim.nc"}})
	d.Pipelines["stage-in-climatology"] = dls.Pipeline{
		Name:  "stage-in-climatology",
		Steps: []dls.Step{{Kind: "stage_in", Dataset: "climatology", Dir: filepath.Join(t.TempDir(), "staged")}},
	}
	return d
}

func TestDeployWalksTopology(t *testing.T) {
	d := newTestDeployer(t)
	e := demoEntry("climate", nil)
	dep, err := d.Deploy(&e, "zeus")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Status != StatusDeployed {
		t.Fatalf("status = %v, log: %v", dep.Status, dep.Log)
	}
	if len(dep.Images) != 1 || dep.Images[0].Tag != "climate-ml:x86_64" {
		t.Fatalf("images = %+v", dep.Images)
	}
	joined := strings.Join(dep.Log, "\n")
	for _, frag := range []string{"allocate hpc_cluster", "install esm_model", "pipeline stage-in-climatology complete", "publish extremes_workflow"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("log missing %q:\n%s", frag, joined)
		}
	}
	// cluster allocated before workflow published
	if strings.Index(joined, "allocate hpc_cluster") > strings.Index(joined, "publish extremes_workflow") {
		t.Fatal("lifecycle order violated")
	}
	if !d.ActiveFor("climate") {
		t.Fatal("deployment not active")
	}
}

func TestDeployFailsOnMissingPipeline(t *testing.T) {
	d := NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64"})
	e := demoEntry("climate", nil)
	dep, err := d.Deploy(&e, "zeus")
	if err == nil {
		t.Fatal("missing pipeline accepted")
	}
	if dep.Status != StatusFailed {
		t.Fatalf("status = %v", dep.Status)
	}
	if d.ActiveFor("climate") {
		t.Fatal("failed deployment counted active")
	}
}

func TestUndeploy(t *testing.T) {
	d := newTestDeployer(t)
	e := demoEntry("climate", nil)
	dep, err := d.Deploy(&e, "zeus")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Undeploy(dep.ID, e.Topology); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get(dep.ID)
	if got.Status != StatusUndeployed {
		t.Fatalf("status = %v", got.Status)
	}
	if d.ActiveFor("climate") {
		t.Fatal("undeployed workflow still active")
	}
	if err := d.Undeploy("dep-999", e.Topology); err == nil {
		t.Fatal("unknown deployment undeployed")
	}
}

func TestExecuteLifecycle(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("climate", nil))
	svc := NewService(reg, d)
	e, _ := reg.Lookup("climate")
	if _, err := svc.Execute("climate", nil); err == nil {
		t.Fatal("execution without deployment accepted")
	}
	if _, err := d.Deploy(e, "zeus"); err != nil {
		t.Fatal(err)
	}
	ex, err := svc.Execute("climate", map[string]string{"msg": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	svc.Wait()
	got, ok := svc.GetExecution(ex.ID)
	if !ok || got.Status != ExecDone || got.Results["echo"] != "hi" {
		t.Fatalf("execution = %+v", got)
	}
	if _, err := svc.Execute("ghost", nil); err == nil {
		t.Fatal("unknown workflow executed")
	}
}

func TestExecuteFailuresCaptured(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("bad", func(map[string]string) (map[string]string, error) {
		return nil, errors.New("app exploded")
	}))
	reg.Register(demoEntry("panics", func(map[string]string) (map[string]string, error) {
		panic("kaboom")
	}))
	svc := NewService(reg, d)
	for _, name := range []string{"bad", "panics"} {
		e, _ := reg.Lookup(name)
		if _, err := d.Deploy(e, "zeus"); err != nil {
			t.Fatal(err)
		}
		ex, err := svc.Execute(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		svc.Wait()
		got, _ := svc.GetExecution(ex.ID)
		if got.Status != ExecFailed || got.Error == "" {
			t.Fatalf("%s: execution = %+v", name, got)
		}
	}
}

// --- REST API ------------------------------------------------------------

func restCall(t *testing.T, srv *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(data)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestRESTEndToEnd(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("climate", nil))
	svc := NewService(reg, d)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// list
	resp, err := srv.Client().Get(srv.URL + "/api/workflows")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0]["name"] != "climate" {
		t.Fatalf("list = %v", list)
	}

	// detail
	code, detail := restCall(t, srv, "GET", "/api/workflows/climate", nil)
	if code != http.StatusOK || detail["topology"] == nil {
		t.Fatalf("detail = %d %v", code, detail)
	}
	if code, _ := restCall(t, srv, "GET", "/api/workflows/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("ghost detail code = %d", code)
	}

	// execute before deploy → conflict
	code, _ = restCall(t, srv, "POST", "/api/executions", map[string]any{"workflow": "climate"})
	if code != http.StatusConflict {
		t.Fatalf("pre-deploy execute code = %d", code)
	}

	// deploy
	code, dep := restCall(t, srv, "POST", "/api/workflows/climate/deploy", map[string]any{"target": "zeus"})
	if code != http.StatusCreated || dep["Status"] != "DEPLOYED" {
		t.Fatalf("deploy = %d %v", code, dep)
	}
	depID := dep["ID"].(string)

	// deployment status
	code, got := restCall(t, srv, "GET", "/api/deployments/"+depID, nil)
	if code != http.StatusOK || got["Workflow"] != "climate" {
		t.Fatalf("deployment get = %d %v", code, got)
	}

	// execute
	code, ex := restCall(t, srv, "POST", "/api/executions",
		map[string]any{"workflow": "climate", "params": map[string]string{"msg": "via REST"}})
	if code != http.StatusAccepted {
		t.Fatalf("execute code = %d (%v)", code, ex)
	}
	exID := ex["id"].(string)

	// poll until done
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, got = restCall(t, srv, "GET", "/api/executions/"+exID, nil)
		if code != http.StatusOK {
			t.Fatalf("poll code = %d", code)
		}
		if got["status"] == "DONE" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("execution stuck: %v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	results := got["results"].(map[string]any)
	if results["echo"] != "via REST" {
		t.Fatalf("results = %v", results)
	}

	// undeploy
	code, _ = restCall(t, srv, "POST", "/api/deployments/"+depID+"/undeploy", nil)
	if code != http.StatusOK {
		t.Fatalf("undeploy code = %d", code)
	}
	code, _ = restCall(t, srv, "POST", "/api/executions", map[string]any{"workflow": "climate"})
	if code != http.StatusConflict {
		t.Fatalf("post-undeploy execute code = %d", code)
	}
}

func TestRESTValidation(t *testing.T) {
	svc := NewService(nil, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if code, _ := restCall(t, srv, "GET", "/api/executions/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("ghost execution code = %d", code)
	}
	if code, _ := restCall(t, srv, "GET", "/api/deployments/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("ghost deployment code = %d", code)
	}
	if code, _ := restCall(t, srv, "POST", "/api/workflows/ghost/deploy", map[string]any{}); code != http.StatusNotFound {
		t.Fatalf("ghost deploy code = %d", code)
	}
	if code, _ := restCall(t, srv, "POST", "/api/executions", map[string]any{"workflow": "ghost"}); code != http.StatusNotFound {
		t.Fatalf("ghost execute code = %d", code)
	}
	// malformed body
	req, _ := http.NewRequest("POST", srv.URL+"/api/executions", strings.NewReader("{broken"))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body code = %d", resp.StatusCode)
	}
}

func TestHealthAndExecutionList(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("climate", nil))
	svc := NewService(reg, d)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	code, health := restCall(t, srv, "GET", "/api/health", nil)
	if code != http.StatusOK || health["status"] != "ok" || health["workflows"].(float64) != 1 {
		t.Fatalf("health = %d %v", code, health)
	}
	e, _ := reg.Lookup("climate")
	if _, err := d.Deploy(e, "zeus"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Execute("climate", map[string]string{"msg": "x"}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Wait()
	resp, err := srv.Client().Get(srv.URL + "/api/executions")
	if err != nil {
		t.Fatal(err)
	}
	var list []Execution
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 3 || list[0].ID != "exec-1" {
		t.Fatalf("executions = %+v", list)
	}
	for _, ex := range list {
		if ex.Status != ExecDone {
			t.Fatalf("execution %s status %s", ex.ID, ex.Status)
		}
	}
}

func TestTokenAuth(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("climate", nil))
	svc := NewService(reg, d)
	if err := svc.AuthorizeToken("", "x"); err == nil {
		t.Fatal("empty token accepted")
	}
	if err := svc.AuthorizeToken("secret-1", "alice"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// no token → 401
	resp, err := srv.Client().Get(srv.URL + "/api/workflows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated code = %d", resp.StatusCode)
	}
	// wrong token → 401
	req, _ := http.NewRequest("GET", srv.URL+"/api/workflows", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad-token code = %d", resp.StatusCode)
	}
	// right token → 200
	req, _ = http.NewRequest("GET", srv.URL+"/api/workflows", nil)
	req.Header.Set("Authorization", "Bearer secret-1")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated code = %d", resp.StatusCode)
	}
}

func TestNoTokensMeansOpenAPI(t *testing.T) {
	svc := NewService(nil, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/workflows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-mode code = %d", resp.StatusCode)
	}
}

func TestDeployerCacheAcrossDeployments(t *testing.T) {
	d := newTestDeployer(t)
	e := demoEntry("climate", nil)
	if _, err := d.Deploy(&e, "zeus"); err != nil {
		t.Fatal(err)
	}
	dep2, err := d.Deploy(&e, "marenostrum")
	if err != nil {
		t.Fatal(err)
	}
	if !dep2.Images[0].Cached {
		t.Fatal("second deployment rebuilt the image")
	}
	if d.Builder.Builds() != 1 {
		t.Fatalf("builds = %d", d.Builder.Builds())
	}
}

func ExampleService_Execute() {
	// Developers register a workflow; users run it via the service.
	reg := NewRegistry()
	_ = reg.Register(Entry{
		Name:     "hello",
		Topology: tosca.ClimateTopology("zeus"),
		App: func(p map[string]string) (map[string]string, error) {
			return map[string]string{"greeting": "hello " + p["who"]}, nil
		},
	})
	d := NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64"})
	d.Pipelines["stage-in-climatology"] = dls.Pipeline{Name: "noop"}
	svc := NewService(reg, d)
	e, _ := reg.Lookup("hello")
	_, _ = d.Deploy(e, "zeus")
	ex, _ := svc.Execute("hello", map[string]string{"who": "climate"})
	svc.Wait()
	got, _ := svc.GetExecution(ex.ID)
	fmt.Println(got.Results["greeting"])
	// Output: hello climate
}
