package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"
)

// Network is an ordered stack of layers trained with Adam.
type Network struct {
	Layers []Layer
}

// Forward runs the full stack.
func (n *Network) Forward(x *Tensor) *Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates an output gradient back through the stack,
// accumulating parameter gradients.
func (n *Network) Backward(grad *Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// ZeroGrads clears accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		for _, pg := range l.Params() {
			for i := range pg.G {
				pg.G[i] = 0
			}
		}
	}
}

// ParamCount returns the number of trainable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, l := range n.Layers {
		for _, pg := range l.Params() {
			c += len(pg.W)
		}
	}
	return c
}

// Adam is the Adam optimizer bound to one network.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float64
	net                   *Network
}

// NewAdam binds an optimizer with standard hyperparameters.
func NewAdam(net *Network, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, net: net}
	for _, l := range net.Layers {
		for _, pg := range l.Params() {
			a.m = append(a.m, make([]float64, len(pg.W)))
			a.v = append(a.v, make([]float64, len(pg.W)))
		}
	}
	return a
}

// Step applies one update from the accumulated gradients (scaled by
// 1/batchSize) and zeroes them.
func (a *Adam) Step(batchSize int) {
	a.t++
	scale := 1.0
	if batchSize > 0 {
		scale = 1 / float64(batchSize)
	}
	k := 0
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, l := range a.net.Layers {
		for _, pg := range l.Params() {
			m, v := a.m[k], a.v[k]
			for i := range pg.W {
				g := pg.G[i] * scale
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
				pg.W[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
				pg.G[i] = 0
			}
			k++
		}
	}
}

// --- serialization -------------------------------------------------------

// netSpec is the gob image of a network: layer kinds plus parameters.
type netSpec struct {
	Kinds  []string
	Convs  []convSpec
	Denses []denseSpec
}

type convSpec struct {
	InC, OutC, K int
	W, B         []float64
}

type denseSpec struct {
	In, Out int
	W, B    []float64
}

// Save writes the network to path.
func (n *Network) Save(path string) error {
	data, err := n.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Marshal encodes the network to bytes.
func (n *Network) Marshal() ([]byte, error) {
	var spec netSpec
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			spec.Kinds = append(spec.Kinds, "conv")
			spec.Convs = append(spec.Convs, convSpec{InC: v.InC, OutC: v.OutC, K: v.K, W: v.W, B: v.B})
		case *Dense:
			spec.Kinds = append(spec.Kinds, "dense")
			spec.Denses = append(spec.Denses, denseSpec{In: v.In, Out: v.Out, W: v.W, B: v.B})
		case *ReLU:
			spec.Kinds = append(spec.Kinds, "relu")
		case *MaxPool2:
			spec.Kinds = append(spec.Kinds, "pool")
		case *Flatten:
			spec.Kinds = append(spec.Kinds, "flatten")
		default:
			return nil, fmt.Errorf("ml: cannot serialize layer %T", l)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a network from Marshal output.
func Unmarshal(data []byte) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&spec); err != nil {
		return nil, err
	}
	n := &Network{}
	ci, di := 0, 0
	for _, kind := range spec.Kinds {
		switch kind {
		case "conv":
			if ci >= len(spec.Convs) {
				return nil, fmt.Errorf("ml: corrupt spec: missing conv %d", ci)
			}
			s := spec.Convs[ci]
			ci++
			c := &Conv2D{InC: s.InC, OutC: s.OutC, K: s.K, W: s.W, B: s.B,
				GW: make([]float64, len(s.W)), GB: make([]float64, len(s.B))}
			n.Layers = append(n.Layers, c)
		case "dense":
			if di >= len(spec.Denses) {
				return nil, fmt.Errorf("ml: corrupt spec: missing dense %d", di)
			}
			s := spec.Denses[di]
			di++
			d := &Dense{In: s.In, Out: s.Out, W: s.W, B: s.B,
				GW: make([]float64, len(s.W)), GB: make([]float64, len(s.B))}
			n.Layers = append(n.Layers, d)
		case "relu":
			n.Layers = append(n.Layers, &ReLU{})
		case "pool":
			n.Layers = append(n.Layers, &MaxPool2{})
		case "flatten":
			n.Layers = append(n.Layers, &Flatten{})
		default:
			return nil, fmt.Errorf("ml: unknown layer kind %q", kind)
		}
	}
	return n, nil
}

// Load reads a network from path.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Clone deep-copies the network (for concurrent inference: each
// goroutine needs its own instance because layers cache activations).
func (n *Network) Clone() (*Network, error) {
	data, err := n.Marshal()
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// NewCNN builds the TC-localizer architecture for a cin-channel h×w
// patch: two conv+relu+pool blocks, then two dense layers emitting
// (presence logit, row fraction, col fraction).
func NewCNN(cin, h, w int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	const k = 3
	h1, w1 := (h-k+1)/2, (w-k+1)/2   // after conv1+pool
	h2, w2 := (h1-k+1)/2, (w1-k+1)/2 // after conv2+pool
	if h2 < 1 || w2 < 1 {
		return nil, fmt.Errorf("ml: patch %dx%d too small for the CNN", h, w)
	}
	flat := 16 * h2 * w2
	return &Network{Layers: []Layer{
		NewConv2D(cin, 8, k, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D(8, 16, k, rng),
		&ReLU{},
		&MaxPool2{},
		&Flatten{},
		NewDense(flat, 32, rng),
		&ReLU{},
		NewDense(32, 3, rng),
	}}, nil
}
