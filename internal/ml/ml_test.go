package ml

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("len = %d", x.Len())
	}
	x.Set3(1, 2, 3, 7)
	if x.At3(1, 2, 3) != 7 {
		t.Fatal("At3/Set3 mismatch")
	}
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] == 99 {
		t.Fatal("clone aliases data")
	}
	if !x.SameShape(y) {
		t.Fatal("clone shape differs")
	}
	if x.SameShape(NewTensor(2, 3)) || x.SameShape(NewTensor(2, 3, 5)) {
		t.Fatal("SameShape false positives")
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTensor(0, 3)
}

func TestConvForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(1, 1, 2, rng)
	// identity-ish kernel: w = [[1,0],[0,0]], b = 0.5
	copy(c.W, []float64{1, 0, 0, 0})
	c.B[0] = 0.5
	x := NewTensor(1, 3, 3)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := c.Forward(x)
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("out shape = %v", out.Shape)
	}
	if out.At3(0, 0, 0) != 0.5 || out.At3(0, 1, 1) != 4.5 {
		t.Fatalf("conv values = %v", out.Data)
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := NewTensor(4)
	copy(x.Data, []float64{-1, 0, 2, -3})
	out := r.Forward(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu = %v", out.Data)
		}
	}
	g := NewTensor(4)
	copy(g.Data, []float64{1, 1, 1, 1})
	back := r.Backward(g)
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if back.Data[i] != wantG[i] {
			t.Fatalf("relu grad = %v", back.Data)
		}
	}
}

func TestMaxPool(t *testing.T) {
	p := &MaxPool2{}
	x := NewTensor(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := p.Forward(x)
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("pool shape = %v", out.Shape)
	}
	if out.At3(0, 0, 0) != 5 || out.At3(0, 1, 1) != 15 {
		t.Fatalf("pool values = %v", out.Data)
	}
	g := NewTensor(1, 2, 2)
	copy(g.Data, []float64{1, 2, 3, 4})
	back := p.Backward(g)
	if back.At3(0, 1, 1) != 1 || back.At3(0, 3, 3) != 4 || back.At3(0, 0, 0) != 0 {
		t.Fatalf("pool grad = %v", back.Data)
	}
}

func TestDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, rng)
	copy(d.W, []float64{3, -1})
	d.B[0] = 0.5
	x := NewTensor(2)
	copy(x.Data, []float64{2, 4})
	out := d.Forward(x)
	if out.Data[0] != 2.5 { // 6 - 4 + 0.5
		t.Fatalf("dense = %v", out.Data)
	}
}

// numericalGrad checks analytic gradients against finite differences
// for a small conv+dense network — the canonical backprop correctness
// test.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := &Network{Layers: []Layer{
		NewConv2D(2, 3, 2, rng),
		&ReLU{},
		&MaxPool2{},
		&Flatten{},
		NewDense(3*2*2, 2, rng),
	}}
	x := NewTensor(2, 5, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := []float64{0.3, -0.7}
	loss := func() float64 {
		out := net.Forward(x)
		l := 0.0
		for i, v := range out.Data {
			d := v - target[i]
			l += d * d
		}
		return l
	}
	// analytic gradient
	net.ZeroGrads()
	out := net.Forward(x)
	grad := NewTensor(2)
	for i, v := range out.Data {
		grad.Data[i] = 2 * (v - target[i])
	}
	net.Backward(grad)

	const eps = 1e-5
	checked := 0
	for _, l := range net.Layers {
		for _, pg := range l.Params() {
			for i := 0; i < len(pg.W); i += 3 { // sample every 3rd param
				orig := pg.W[i]
				pg.W[i] = orig + eps
				lp := loss()
				pg.W[i] = orig - eps
				lm := loss()
				pg.W[i] = orig
				num := (lp - lm) / (2 * eps)
				ana := pg.G[i]
				if math.Abs(num-ana) > 1e-3*(1+math.Abs(num)) {
					t.Fatalf("grad mismatch at param %d: analytic %v numerical %v", i, ana, num)
				}
				checked++
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d params checked", checked)
	}
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := &Network{Layers: []Layer{NewDense(3, 8, rng), &ReLU{}, NewDense(8, 1, rng)}}
	opt := NewAdam(net, 0.01)
	// target function: y = x0 + 2*x1 - x2
	sample := func() (*Tensor, float64) {
		x := NewTensor(3)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		return x, x.Data[0] + 2*x.Data[1] - x.Data[2]
	}
	lossAt := func(n int) float64 {
		var total float64
		for i := 0; i < n; i++ {
			x, y := sample()
			out := net.Forward(x)
			d := out.Data[0] - y
			total += d * d
		}
		return total / float64(n)
	}
	before := lossAt(50)
	for it := 0; it < 400; it++ {
		x, y := sample()
		out := net.Forward(x)
		g := NewTensor(1)
		g.Data[0] = 2 * (out.Data[0] - y)
		net.Backward(g)
		if (it+1)%8 == 0 {
			opt.Step(8)
		}
	}
	after := lossAt(50)
	if after > before/4 {
		t.Fatalf("training did not reduce loss: %v -> %v", before, after)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net, err := NewCNN(2, 12, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := NewTensor(2, 12, 12)
	rng := rand.New(rand.NewSource(9))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Forward(x)

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Forward(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("output diverged after reload at %d: %v vs %v", i, want.Data[i], got.Data[i])
		}
	}
	if loaded.ParamCount() != net.ParamCount() {
		t.Fatalf("param counts differ: %d vs %d", loaded.ParamCount(), net.ParamCount())
	}
}

func TestCloneIndependent(t *testing.T) {
	net, _ := NewCNN(2, 12, 12, 7)
	clone, err := net.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// mutate original weights; clone must not change
	conv := net.Layers[0].(*Conv2D)
	cloneConv := clone.Layers[0].(*Conv2D)
	orig := cloneConv.W[0]
	conv.W[0] += 100
	if cloneConv.W[0] != orig {
		t.Fatal("clone shares weights")
	}
}

func TestLoadCorruptData(t *testing.T) {
	if _, err := Unmarshal([]byte("not gob")); err == nil {
		t.Fatal("corrupt data accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNewCNNTooSmall(t *testing.T) {
	if _, err := NewCNN(2, 4, 4, 1); err == nil {
		t.Fatal("tiny patch accepted")
	}
}

func TestSigmoidRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		v := Sigmoid(x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestNetworkDeterministicSeed(t *testing.T) {
	a, _ := NewCNN(2, 12, 12, 42)
	b, _ := NewCNN(2, 12, 12, 42)
	ca, cb := a.Layers[0].(*Conv2D), b.Layers[0].(*Conv2D)
	for i := range ca.W {
		if ca.W[i] != cb.W[i] {
			t.Fatal("same seed, different weights")
		}
	}
	c, _ := NewCNN(2, 12, 12, 43)
	cc := c.Layers[0].(*Conv2D)
	if ca.W[0] == cc.W[0] {
		t.Fatal("different seeds, same weights")
	}
}
