package dag

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("a", "load")
	b := g.AddNode("b", "compute")
	c := g.AddNode("c", "compute")
	d := g.AddNode("d", "store")
	for _, e := range [][2]NodeID{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g, a, b, c, d
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New()
	if id := g.AddNode("x", "k"); id != 1 {
		t.Fatalf("first ID = %d, want 1", id)
	}
	if id := g.AddNode("y", "k"); id != 2 {
		t.Fatalf("second ID = %d, want 2", id)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestAddEdgeRejectsUnknownNodes(t *testing.T) {
	g := New()
	a := g.AddNode("a", "k")
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if err := g.AddEdge(99, a); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("a", "k")
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestAddEdgeRejectsCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a", "k")
	b := g.AddNode("b", "k")
	c := g.AddNode("c", "k")
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	if err := g.AddEdge(c, a); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("a", "k")
	b := g.AddNode("b", "k")
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, b)
	if got := g.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount = %d, want 1", got)
	}
}

func mustEdge(t *testing.T, g *Graph, from, to NodeID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[a] < pos[b] && pos[a] < pos[c] && pos[b] < pos[d] && pos[c] < pos[d]) {
		t.Fatalf("order %v violates dependencies", order)
	}
}

func TestLevelsDiamond(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != a {
		t.Fatalf("level 0 = %v, want [%d]", levels[0], a)
	}
	if len(levels[1]) != 2 || levels[1][0] != b || levels[1][1] != c {
		t.Fatalf("level 1 = %v, want [%d %d]", levels[1], b, c)
	}
	if len(levels[2]) != 1 || levels[2][0] != d {
		t.Fatalf("level 2 = %v, want [%d]", levels[2], d)
	}
}

func TestMaxWidth(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	w, err := g.MaxWidth()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("MaxWidth = %d, want 2", w)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	if r := g.Roots(); len(r) != 1 || r[0] != a {
		t.Fatalf("Roots = %v", r)
	}
	if l := g.Leaves(); len(l) != 1 || l[0] != d {
		t.Fatalf("Leaves = %v", l)
	}
}

func TestCriticalPathWeights(t *testing.T) {
	g := New()
	a := g.AddNode("a", "k")
	b := g.AddNode("b", "k")
	c := g.AddNode("c", "k")
	d := g.AddNode("d", "k")
	g.Node(b).Weight = 10 // heavy branch
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, c)
	mustEdge(t, g, b, d)
	mustEdge(t, g, c, d)
	path, w, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if w != 12 { // 1 + 10 + 1
		t.Fatalf("critical weight = %v, want 12", w)
	}
	want := []NodeID{a, b, d}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New()
	path, w, err := g.CriticalPath()
	if err != nil || path != nil || w != 0 {
		t.Fatalf("empty graph: path=%v w=%v err=%v", path, w, err)
	}
}

func TestKindCounts(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	kc := g.KindCounts()
	if kc["compute"] != 2 || kc["load"] != 1 || kc["store"] != 1 {
		t.Fatalf("KindCounts = %v", kc)
	}
}

func TestDOTDeterministicAndColored(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	d1 := g.DOT("wf")
	d2 := g.DOT("wf")
	if d1 != d2 {
		t.Fatal("DOT output not deterministic")
	}
	for _, frag := range []string{"digraph \"wf\"", "n1 -> n2", "n2 -> n4", "fillcolor=lightblue", "fillcolor=tomato"} {
		if !strings.Contains(d1, frag) {
			t.Fatalf("DOT missing %q in:\n%s", frag, d1)
		}
	}
}

func TestPredecessorsSuccessorsSorted(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	p := g.Predecessors(d)
	if len(p) != 2 || p[0] != b || p[1] != c {
		t.Fatalf("Predecessors(d) = %v", p)
	}
	s := g.Successors(a)
	if len(s) != 2 || s[0] != b || s[1] != c {
		t.Fatalf("Successors(a) = %v", s)
	}
}

// Property: for random forward-only edge sets the graph always yields a
// valid topological order covering every node.
func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 20
		g := New()
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode("t", "k")
		}
		for _, e := range edges {
			from := int(e>>8) % n
			to := int(e&0xff) % n
			if from >= to {
				continue // keep it acyclic by construction
			}
			if err := g.AddEdge(ids[from], ids[to]); err != nil {
				return false
			}
		}
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[NodeID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			for _, s := range g.Successors(id) {
				if pos[s] <= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddEdge never allows a cycle, no matter the insertion order.
func TestNoCyclePropertyRandomEdges(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 12
		g := New()
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode("t", "k")
		}
		for _, e := range edges {
			from := ids[int(e>>8)%n]
			to := ids[int(e&0xff)%n]
			_ = g.AddEdge(from, to) // errors fine; cycles must be rejected
		}
		_, err := g.TopoOrder()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsRespectDependencies(t *testing.T) {
	g := New()
	var prev NodeID
	for i := 0; i < 10; i++ {
		id := g.AddNode("chain", "k")
		if prev != 0 {
			mustEdge(t, g, prev, id)
		}
		prev = id
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 10 {
		t.Fatalf("chain of 10 should have 10 levels, got %d", len(levels))
	}
	w, _ := g.MaxWidth()
	if w != 1 {
		t.Fatalf("chain MaxWidth = %d, want 1", w)
	}
}
