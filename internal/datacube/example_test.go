package datacube_test

import (
	"fmt"

	"repro/internal/datacube"
)

// Example reproduces the paper's Listing 1 pattern: a predicate mask
// over a datacube followed by a reduction, with the intermediate cube
// deleted, all on the in-memory engine.
func Example() {
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()

	// a tiny cube: 3 cells × 5 daily values
	duration, err := engine.NewCubeFromFunc("duration",
		[]datacube.Dimension{{Name: "cell", Size: 3}},
		datacube.Dimension{Name: "day", Size: 5},
		func(row, day int) float32 { return float32(row * day) })
	if err != nil {
		panic(err)
	}

	// Listing 1: Mask = oph_predicate(measure, 'x>0', '1', '0')
	mask, err := duration.Apply("x>0 ? 1 : 0")
	if err != nil {
		panic(err)
	}
	// Count = Mask.reduce(operation='sum')
	count, err := mask.Reduce("sum")
	if err != nil {
		panic(err)
	}
	// Mask.delete()
	if err := mask.Delete(); err != nil {
		panic(err)
	}

	for r := 0; r < count.Rows(); r++ {
		row, _ := count.Row(r)
		fmt.Printf("cell %d: %g positive days\n", r, row[0])
	}
	// Output:
	// cell 0: 0 positive days
	// cell 1: 4 positive days
	// cell 2: 4 positive days
}

// ExampleCube_ReduceGroup shows the 6-hourly → daily reduction the
// index pipelines start with.
func ExampleCube_ReduceGroup() {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	temp, err := engine.NewCubeFromFunc("TREFHT",
		[]datacube.Dimension{{Name: "cell", Size: 1}},
		datacube.Dimension{Name: "time", Size: 8}, // 2 days × 4 steps
		func(_, t int) float32 { return float32(t) })
	if err != nil {
		panic(err)
	}
	daily, err := temp.ReduceGroup("max", 4)
	if err != nil {
		panic(err)
	}
	row, _ := daily.Row(0)
	fmt.Println(row)
	// Output: [3 7]
}
