// Package tctrack implements a deterministic tropical-cyclone detection
// and tracking scheme of the classical kind the paper cites as the
// validation path for the ML localizer (§5.4: "the workflow for climate
// extreme events can execute deterministic TC tracking schemes to
// further validate the results").
//
// Detection follows the standard multi-criteria recipe (cf. Zarzycki &
// Ullrich; Murakami): a sea-level-pressure local minimum with a closed
// depression relative to its surroundings, cyclonic 850 hPa vorticity
// for the hemisphere, and a warm core at 500 hPa, restricted to
// tropical/subtropical latitudes. Tracking stitches step-wise
// detections by nearest-neighbour association under a maximum
// displacement, and discards short-lived tracks.
package tctrack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/esm"
	"repro/internal/grid"
)

// Criteria holds the detection thresholds.
type Criteria struct {
	// MinDepressionPa is the required central pressure deficit relative
	// to the ring average.
	MinDepressionPa float64
	// MinVorticity is the required cyclonic 850 hPa relative vorticity
	// magnitude (sign-adjusted per hemisphere).
	MinVorticity float64
	// MinWarmCoreK is the required 500 hPa warm anomaly at the center.
	MinWarmCoreK float64
	// MaxAbsLat restricts candidates to the tropical belt.
	MaxAbsLat float64
	// RingCells is the radius, in grid cells, of the comparison ring.
	RingCells int
	// MinimaWindow is the neighbourhood half-width for the local-minimum
	// test.
	MinimaWindow int
}

// DefaultCriteria returns thresholds tuned to the simulator's vortex
// signature (the real numbers would be tuned to the ESM climatology the
// same way).
func DefaultCriteria() Criteria {
	return Criteria{
		MinDepressionPa: 1100,
		MinVorticity:    1e-4,
		MinWarmCoreK:    2.0,
		MaxAbsLat:       45,
		RingCells:       6,
		MinimaWindow:    2,
	}
}

// Detection is one instantaneous storm candidate.
type Detection struct {
	Day, Step    int
	Lat, Lon     float64
	DepressionPa float64
	Vorticity    float64
	WarmCoreK    float64
}

// DetectStep scans one model step for storm candidates.
func DetectStep(day *esm.DayOutput, step int, c Criteria) ([]Detection, error) {
	psl, err := day.Field(step, "PSL")
	if err != nil {
		return nil, err
	}
	vort, err := day.Field(step, "VORT850")
	if err != nil {
		return nil, err
	}
	t500, err := day.Field(step, "T500")
	if err != nil {
		return nil, err
	}
	return DetectFields(psl, vort, t500, day.DayOfYear, step, c), nil
}

// DetectFields is DetectStep over raw fields.
func DetectFields(psl, vort, t500 *grid.Field, dayOfYear, step int, c Criteria) []Detection {
	g := psl.Grid
	var out []Detection
	for i := 0; i < g.NLat; i++ {
		lat := g.Lat(i)
		if math.Abs(lat) > c.MaxAbsLat {
			continue
		}
		for j := 0; j < g.NLon; j++ {
			p := psl.At(i, j)
			if !isLocalMin(psl, i, j, c.MinimaWindow) {
				continue
			}
			ringP, ringT := ringMeans(psl, t500, i, j, c.RingCells)
			depression := float64(ringP) - float64(p)
			if depression < c.MinDepressionPa {
				continue
			}
			warm := float64(t500.At(i, j)) - float64(ringT)
			if warm < c.MinWarmCoreK {
				continue
			}
			v := float64(vort.At(i, j))
			if lat >= 0 && v < c.MinVorticity {
				continue
			}
			if lat < 0 && v > -c.MinVorticity {
				continue
			}
			out = append(out, Detection{
				Day: dayOfYear, Step: step,
				Lat: lat, Lon: g.Lon(j),
				DepressionPa: depression,
				Vorticity:    v,
				WarmCoreK:    warm,
			})
		}
	}
	// strongest first, for dedup by proximity
	sort.Slice(out, func(a, b int) bool { return out[a].DepressionPa > out[b].DepressionPa })
	return dedup(out, 500)
}

// dedup suppresses weaker detections within km of a stronger one.
func dedup(dets []Detection, km float64) []Detection {
	var out []Detection
	for _, d := range dets {
		keep := true
		for _, k := range out {
			if grid.Haversine(d.Lat, d.Lon, k.Lat, k.Lon) < km {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}

// isLocalMin reports whether (i,j) is a strict minimum of its
// neighbourhood (ties broken toward larger indices to keep one winner).
func isLocalMin(f *grid.Field, i, j, w int) bool {
	v := f.At(i, j)
	for di := -w; di <= w; di++ {
		for dj := -w; dj <= w; dj++ {
			if di == 0 && dj == 0 {
				continue
			}
			n := f.At(i+di, j+dj)
			if n < v || (n == v && (di < 0 || (di == 0 && dj < 0))) {
				return false
			}
		}
	}
	return true
}

// ringMeans averages PSL and T500 on the square ring at distance r.
func ringMeans(psl, t500 *grid.Field, i, j, r int) (float32, float32) {
	var sumP, sumT float64
	n := 0
	for dj := -r; dj <= r; dj++ {
		for _, di := range []int{-r, r} {
			sumP += float64(psl.At(i+di, j+dj))
			sumT += float64(t500.At(i+di, j+dj))
			n++
		}
	}
	for di := -r + 1; di <= r-1; di++ {
		for _, dj := range []int{-r, r} {
			sumP += float64(psl.At(i+di, j+dj))
			sumT += float64(t500.At(i+di, j+dj))
			n++
		}
	}
	return float32(sumP / float64(n)), float32(sumT / float64(n))
}

// Track is a stitched storm trajectory.
type Track struct {
	ID     int
	Points []Detection
}

// Duration returns the track length in 6-hourly steps.
func (t *Track) Duration() int { return len(t.Points) }

// Tracker stitches per-step detections into tracks.
type Tracker struct {
	// MaxStepKm is the maximum displacement between consecutive steps.
	MaxStepKm float64
	// MinPoints is the minimum track length to report.
	MinPoints int

	open   []*Track
	closed []*Track
	nextID int
}

// NewTracker returns a tracker with sensible defaults: storms move well
// under 800 km per 6 h, and tracks shorter than 6 steps (1.5 days) are
// treated as noise — daily-persistent weather patterns can fake a
// four-step track because the synoptic field changes once per day.
func NewTracker() *Tracker {
	return &Tracker{MaxStepKm: 800, MinPoints: 6, nextID: 1}
}

// Advance ingests the detections of the next time step (call in
// chronological order). Detections extend the nearest open track within
// MaxStepKm or open new tracks; unmatched open tracks close.
func (tr *Tracker) Advance(dets []Detection) {
	matched := make([]bool, len(dets))
	var stillOpen []*Track
	for _, track := range tr.open {
		last := track.Points[len(track.Points)-1]
		bestIdx, bestDist := -1, tr.MaxStepKm
		for i, d := range dets {
			if matched[i] {
				continue
			}
			dist := grid.Haversine(last.Lat, last.Lon, d.Lat, d.Lon)
			if dist <= bestDist {
				bestDist = dist
				bestIdx = i
			}
		}
		if bestIdx >= 0 {
			matched[bestIdx] = true
			track.Points = append(track.Points, dets[bestIdx])
			stillOpen = append(stillOpen, track)
		} else {
			tr.closed = append(tr.closed, track)
		}
	}
	tr.open = stillOpen
	for i, d := range dets {
		if !matched[i] {
			tr.open = append(tr.open, &Track{ID: tr.nextID, Points: []Detection{d}})
			tr.nextID++
		}
	}
}

// Finish closes all open tracks and returns those meeting MinPoints,
// ordered by ID.
func (tr *Tracker) Finish() []*Track {
	tr.closed = append(tr.closed, tr.open...)
	tr.open = nil
	var out []*Track
	for _, t := range tr.closed {
		if len(t.Points) >= tr.MinPoints {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunModel detects and tracks across an entire model run, returning the
// qualifying tracks. It consumes the model (steps it to completion).
func RunModel(m *esm.Model, c Criteria) ([]*Track, error) {
	tr := NewTracker()
	for {
		d := m.StepDay()
		if d == nil {
			break
		}
		for s := 0; s < esm.StepsPerDay; s++ {
			dets, err := DetectStep(d, s, c)
			if err != nil {
				return nil, err
			}
			tr.Advance(dets)
		}
	}
	return tr.Finish(), nil
}

// Skill quantifies detection quality against seeded ground truth.
type Skill struct {
	// POD is the probability of detection (hits / truth instants).
	POD float64
	// FAR is the false-alarm ratio (false detections / all detections).
	FAR float64
	// MeanErrorKm is the mean center error over hits.
	MeanErrorKm float64
	Hits        int
	Misses      int
	FalseAlarms int
}

func (s Skill) String() string {
	return fmt.Sprintf("POD=%.2f FAR=%.2f err=%.0fkm (hit=%d miss=%d fa=%d)",
		s.POD, s.FAR, s.MeanErrorKm, s.Hits, s.Misses, s.FalseAlarms)
}

// Instant pairs a truth point with the detections of the same step.
type Instant struct {
	Truth []esm.TrackPoint
	Dets  []Detection
}

// Evaluate matches detections to truth points within matchKm and
// accumulates skill over the instants.
func Evaluate(instants []Instant, matchKm float64) Skill {
	var sk Skill
	var errSum float64
	for _, in := range instants {
		used := make([]bool, len(in.Dets))
		for _, tp := range in.Truth {
			bestIdx, bestDist := -1, matchKm
			for i, d := range in.Dets {
				if used[i] {
					continue
				}
				dist := grid.Haversine(tp.Lat, tp.Lon, d.Lat, d.Lon)
				if dist <= bestDist {
					bestDist = dist
					bestIdx = i
				}
			}
			if bestIdx >= 0 {
				used[bestIdx] = true
				sk.Hits++
				errSum += bestDist
			} else {
				sk.Misses++
			}
		}
		for i := range in.Dets {
			if !used[i] {
				sk.FalseAlarms++
			}
		}
	}
	if sk.Hits+sk.Misses > 0 {
		sk.POD = float64(sk.Hits) / float64(sk.Hits+sk.Misses)
	}
	if sk.Hits+sk.FalseAlarms > 0 {
		sk.FAR = float64(sk.FalseAlarms) / float64(sk.Hits+sk.FalseAlarms)
	}
	if sk.Hits > 0 {
		sk.MeanErrorKm = errSum / float64(sk.Hits)
	}
	return sk
}
