package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/execstore"
)

// replicaRun is chaosrun -mode replica: the control-plane counterpart
// of the checkpoint/crash/resume story. A clean single-replica run
// produces reference outputs; the chaotic run drains the same task set
// through a replica set while (a) a kill loop crashes executors
// mid-task and (b) a seeded chaos.SiteLease injector perturbs the lease
// sweeper itself (force-expiry = holder with a slow clock, deferral =
// fast clock). Exit is non-zero unless every task completes exactly
// once with outputs byte-identical to the clean run.
func replicaRun(tasks, workers int, chaosSeed int64, killEvery time.Duration) error {
	handler := func(ctx context.Context, t execstore.TaskView) (json.RawMessage, error) {
		h := fnv.New64a()
		h.Write([]byte(t.ID))
		h.Write(t.Payload)
		sum := h.Sum64()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(sum%15+5) * time.Millisecond):
		}
		out, _ := json.Marshal(map[string]any{"id": t.ID, "digest": fmt.Sprintf("%016x", sum)})
		return out, nil
	}
	set := make([]execstore.Task, tasks)
	for i := range set {
		set[i] = execstore.Task{
			ID:      fmt.Sprintf("ct-%04d", i),
			Tenant:  fmt.Sprintf("tenant-%d", i%7),
			Kind:    []string{"sim", "post", "ml"}[i%3],
			Payload: json.RawMessage(fmt.Sprintf(`{"seed":%d}`, i*104729)),
		}
	}
	collect := func(s *execstore.Store) (map[string]string, error) {
		outs := make(map[string]string, tasks)
		for _, t := range set {
			v, ok := s.Get(t.ID)
			if !ok {
				return nil, fmt.Errorf("task %s lost", t.ID)
			}
			if v.State != execstore.StateDone {
				return nil, fmt.Errorf("task %s ended %s (err %q), want DONE", t.ID, v.State, v.Err)
			}
			outs[t.ID] = string(v.Output)
		}
		return outs, nil
	}

	log.Printf("chaosrun: [1/2] clean reference run (%d tasks, 1 replica)", tasks)
	cleanStore, err := execstore.Open(execstore.Config{MaxPending: tasks + 1, LeaseTTL: time.Second})
	if err != nil {
		return err
	}
	defer cleanStore.Close()
	cleanRep, err := execstore.NewReplica(execstore.ReplicaConfig{
		ID: "clean-1", Store: cleanStore, Workers: 8, Handler: handler,
	})
	if err != nil {
		return err
	}
	defer cleanRep.Kill()
	for _, t := range set {
		if _, err := cleanStore.Submit(t); err != nil {
			return fmt.Errorf("clean submit %s: %w", t.ID, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := cleanStore.WaitIdle(ctx); err != nil {
		return fmt.Errorf("clean run did not finish: %w", err)
	}
	reference, err := collect(cleanStore)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}

	log.Printf("chaosrun: [2/2] chaotic run (3 replicas, kill every %v, lease chaos seed %d)", killEvery, chaosSeed)
	inj := chaos.NewSeeded(chaosSeed,
		// Force-expire ~2% of held leases (a holder whose clock ran slow)
		// and defer another ~2% (a holder ahead of the sweeper).
		chaos.Rule{Site: chaos.SiteLease, Attempt: chaos.AnyAttempt, Kind: chaos.Transient, Prob: 0.02},
		chaos.Rule{Site: chaos.SiteLease, Attempt: chaos.AnyAttempt, Kind: chaos.Latency, Prob: 0.02, Delay: 30 * time.Millisecond},
	)
	s, err := execstore.Open(execstore.Config{
		MaxPending: tasks + 1,
		LeaseTTL:   250 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
		Injector:   inj,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	newRep := func(id string) (*execstore.Replica, error) {
		return execstore.NewReplica(execstore.ReplicaConfig{
			ID: id, Store: s, Workers: workers, Handler: handler,
		})
	}
	var mu sync.Mutex
	reps := make([]*execstore.Replica, 3)
	for i := range reps {
		if reps[i], err = newRep(fmt.Sprintf("rep-%d", i)); err != nil {
			return err
		}
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range reps {
			r.Kill()
		}
	}()

	stopChaos := make(chan struct{})
	killsCh := make(chan int)
	go func() {
		kills, gen := 0, len(reps)
		for {
			select {
			case <-stopChaos:
				killsCh <- kills
				return
			case <-time.After(killEvery):
			}
			mu.Lock()
			reps[kills%len(reps)].Kill() // crash: leases silently abandoned
			r, err := newRep(fmt.Sprintf("rep-%d", gen))
			if err == nil {
				reps[kills%len(reps)] = r
			}
			kills++
			gen++
			mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < tasks; i += 4 {
				for {
					_, err := s.Submit(set[i])
					if err == nil {
						break
					}
					se, ok := execstore.AsShed(err)
					if !ok {
						errOnce.Do(func() { submitErr = fmt.Errorf("submit %s: %w", set[i].ID, err) })
						return
					}
					time.Sleep(se.RetryAfter)
				}
			}
		}(c)
	}
	wg.Wait()
	if submitErr != nil {
		return submitErr
	}

	if err := s.WaitIdle(ctx); err != nil {
		return fmt.Errorf("chaotic run did not converge: %w (stats %+v)", err, s.Stats())
	}
	close(stopChaos)
	kills := <-killsCh

	got, err := collect(s)
	if err != nil {
		return fmt.Errorf("chaotic run: %w", err)
	}
	for id, want := range reference {
		if got[id] != want {
			return fmt.Errorf("task %s output diverged:\n  clean: %s\n  chaos: %s", id, want, got[id])
		}
	}
	st := s.Stats()
	if int(st.Completed) != tasks {
		return fmt.Errorf("Completed = %d, want exactly %d (lost or double-completed work)", st.Completed, tasks)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		return fmt.Errorf("failed=%d canceled=%d, want 0/0", st.Failed, st.Canceled)
	}
	log.Printf("chaosrun: %d replica kills, %d lease reclaims, %d fenced stale reports, epoch %d",
		kills, st.Reclaimed, st.Fenced, st.Epoch)
	log.Printf("chaosrun: injected %-9s x %d (forced lease expiry)", chaos.Transient, inj.CountKind(chaos.Transient))
	log.Printf("chaosrun: injected %-9s x %d (deferred lease expiry)", chaos.Latency, inj.CountKind(chaos.Latency))
	if kills == 0 {
		return errors.New("kill loop never fired; run too short to prove anything")
	}
	if st.Reclaimed == 0 && inj.CountKind(chaos.Transient) == 0 {
		return errors.New("no lease was ever reclaimed or force-expired; chaos did not bite")
	}
	log.Printf("chaosrun: all %d task outputs byte-identical to the clean run", tasks)
	return nil
}
