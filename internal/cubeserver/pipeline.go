package cubeserver

import (
	"fmt"

	"repro/internal/datacube"
)

// PipelineStep is one operator application in a server-side pipeline.
// Input defaults to the previous step's output; step 0 consumes the
// pipeline's source cube.
type PipelineStep struct {
	// Op is the operator: apply, reduce, reducegroup, reducestride,
	// subset, subsetrows, intercube, aggrows, aggtrailing.
	Op string
	// Expr is the expression for apply.
	Expr string
	// RowOp names the reduction for reduce*/agg* and the arithmetic op
	// for intercube.
	RowOp string
	// Params are row-op parameters.
	Params []float64
	// Group is the group/stride size for reducegroup/reducestride.
	Group int
	// Lo, Hi bound subset/subsetrows.
	Lo, Hi int
	// OtherID names the second operand cube for intercube.
	OtherID string
	// Keep retains this step's intermediate cube; unkept intermediates
	// are deleted server-side once the pipeline finishes (the Listing 1
	// Mask.delete() pattern, automated).
	Keep bool
	// Tolerance, set on the FINAL step, declares the absolute error the
	// client accepts on the pipeline result, enabling coarse-first
	// execution over the source cube's resolution pyramid server-side
	// (datacube.Plan.Tolerance). Zero keeps execution byte-identical to
	// the exact path; it is ignored on non-final steps.
	Tolerance float64
}

// PipelineRequest executes an operator chain server-side in one round
// trip — the analogue of submitting an Ophidia workflow document
// instead of issuing operators one by one.
type PipelineRequest struct {
	CubeID string
	Steps  []PipelineStep
}

// runPipeline compiles the request into a datacube.Plan and executes
// it: consecutive row-local steps run as one fused per-fragment pass,
// and only kept steps (plus the final result) materialize as registered
// cubes — a Keep is the client's explicit materialization boundary.
// Failed pipelines leave no unkept intermediates behind (the plan
// executor deletes its temporaries on error).
func runPipeline(engine *datacube.Engine, req *PipelineRequest) (*datacube.Cube, error) {
	if len(req.Steps) == 0 {
		return nil, fmt.Errorf("cubeserver: empty pipeline")
	}
	src, err := engine.Get(req.CubeID)
	if err != nil {
		return nil, err
	}
	plan := src.Lazy()
	for i, st := range req.Steps {
		switch st.Op {
		case "apply":
			plan.Apply(st.Expr)
		case "reduce":
			plan.Reduce(st.RowOp, st.Params...)
		case "reducegroup":
			plan.ReduceGroup(st.RowOp, st.Group, st.Params...)
		case "reducestride":
			plan.ReduceStride(st.RowOp, st.Group, st.Params...)
		case "subset":
			plan.Subset(st.Lo, st.Hi)
		case "subsetrows":
			plan.SubsetRows(st.Lo, st.Hi)
		case "intercube":
			other, err := engine.Get(st.OtherID)
			if err != nil {
				return nil, fmt.Errorf("cubeserver: pipeline step %d (%s): %w", i, st.Op, err)
			}
			plan.Intercube(other, st.RowOp)
		case "aggrows":
			plan.AggregateRows(st.RowOp, st.Params...)
		case "aggtrailing":
			plan.AggregateTrailing(st.RowOp, st.Params...)
		default:
			return nil, fmt.Errorf("pipeline step %d: %w %q", i, ErrUnknownOp, st.Op)
		}
		// The last step's output is the pipeline result and is always
		// retained, so Keep on it is moot — same as the eager semantics.
		if st.Keep && i < len(req.Steps)-1 {
			plan.Keep()
		}
	}
	if tol := req.Steps[len(req.Steps)-1].Tolerance; tol > 0 {
		plan.Tolerance(tol)
	}
	out, err := plan.Execute()
	if err != nil {
		return nil, fmt.Errorf("cubeserver: pipeline: %w", err)
	}
	return out, nil
}

// Pipeline executes an operator chain server-side and returns the
// final cube's handle. Intermediate cubes are freed automatically
// unless their step sets Keep.
func (r *RemoteCube) Pipeline(steps ...PipelineStep) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "pipeline", CubeID: r.ID(), Pipeline: steps})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}
