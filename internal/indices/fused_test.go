package indices

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datacube"
	"repro/internal/grid"
)

// These tests pin the tentpole guarantee of the fused data plane: every
// index pipeline must produce byte-for-byte the same cubes whether it
// runs operator-at-a-time (eager) or as fused plan passes.

func requireBitIdentical(t *testing.T, name string, fused, eager *datacube.Cube) {
	t.Helper()
	if fused == nil || eager == nil {
		t.Fatalf("%s: nil cube (fused=%v eager=%v)", name, fused != nil, eager != nil)
	}
	if fused.Rows() != eager.Rows() || fused.ImplicitLen() != eager.ImplicitLen() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name,
			fused.Rows(), fused.ImplicitLen(), eager.Rows(), eager.ImplicitLen())
	}
	fv := fused.Values()
	ev := eager.Values()
	for r := range fv {
		for i := range fv[r] {
			if math.Float32bits(fv[r][i]) != math.Float32bits(ev[r][i]) {
				t.Fatalf("%s: row %d elem %d: fused %v != eager %v", name, r, i, fv[r][i], ev[r][i])
			}
		}
	}
}

// seededAnomaly returns a deterministic per-(row,day) anomaly stream
// with enough spread to trigger waves, quiet spells and dry runs.
func seededAnomaly(seed int64, rows, days int) func(row, day int) float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, rows*days)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 4
	}
	return func(row, day int) float64 { return vals[row*days+day] }
}

func TestWaveFusedMatchesEager(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, err := BuildBaseline(e, g, days)
	if err != nil {
		t.Fatal(err)
	}
	temp := syntheticTempCube(t, e, g, days, seededAnomaly(20260805, g.Size(), days))
	p := Params{ThresholdK: 3, MinDays: 3, DaysPerYear: days}

	for _, tc := range []struct {
		name string
		run  func(p Params) (*Result, error)
	}{
		{"heat", func(p Params) (*Result, error) { return HeatWavesFromCube(temp, b, p) }},
		{"cold", func(p Params) (*Result, error) { return ColdWavesFromCube(temp, b, p) }},
	} {
		pf, pe := tc.run, tc.run
		p.Eager = false
		fused, err := pf(p)
		if err != nil {
			t.Fatalf("%s fused: %v", tc.name, err)
		}
		p.Eager = true
		eager, err := pe(p)
		if err != nil {
			t.Fatalf("%s eager: %v", tc.name, err)
		}
		requireBitIdentical(t, tc.name+"/duration", fused.Duration, eager.Duration)
		requireBitIdentical(t, tc.name+"/number", fused.Number, eager.Number)
		requireBitIdentical(t, tc.name+"/frequency", fused.Frequency, eager.Frequency)
		for _, c := range []*datacube.Cube{fused.Duration, fused.Number, fused.Frequency} {
			if got, ok := c.Meta("index"); !ok || got == "" {
				t.Fatalf("%s: fused cube missing index meta", tc.name)
			}
		}
	}
}

func TestETCCDIFusedMatchesEager(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, err := BuildPercentileBaseline(e, g, days, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	temp := syntheticTempCube(t, e, g, days, seededAnomaly(7, g.Size(), days))
	p := Params{MinDays: 3, DaysPerYear: days}

	fused, err := ETCCDI(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Eager = true
	eager, err := ETCCDI(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "TX90p", fused.TX90p, eager.TX90p)
	requireBitIdentical(t, "TN10p", fused.TN10p, eager.TN10p)
	requireBitIdentical(t, "WSDI", fused.WSDI, eager.WSDI)
	requireBitIdentical(t, "CSDI", fused.CSDI, eager.CSDI)
}

func TestPrecipFusedMatchesEager(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 5, NLon: 7}
	const days = 24
	rng := rand.New(rand.NewSource(99))
	vals := make([]float32, g.Size()*days)
	for i := range vals {
		// mix of dry days and heavy rain so CDD and R95pTOT are non-trivial
		if rng.Float64() < 0.4 {
			vals[i] = float32(rng.Float64() * 0.9)
		} else {
			vals[i] = float32(rng.ExpFloat64() * 8)
		}
	}
	daily, err := e.NewCubeFromFunc("PR_DAILY",
		[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
		datacube.Dimension{Name: "time", Size: days},
		func(row, d int) float32 { return vals[row*days+d] })
	if err != nil {
		t.Fatal(err)
	}
	p95, err := e.NewCubeFromFunc("PR95_CLIM",
		[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
		datacube.Dimension{Name: "time", Size: days},
		func(row, d int) float32 { return 4 + float32(row%3) })
	if err != nil {
		t.Fatal(err)
	}

	fused, err := PrecipIndices(daily, p95)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := precipIndicesEager(daily, p95)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "PRCPTOT", fused.PRCPTOT, eager.PRCPTOT)
	requireBitIdentical(t, "Rx1day", fused.Rx1day, eager.Rx1day)
	requireBitIdentical(t, "CDD", fused.CDD, eager.CDD)
	requireBitIdentical(t, "R95pTOT", fused.R95pTOT, eager.R95pTOT)

	// nil baseline skips R95pTOT on both paths
	fusedNo, err := PrecipIndices(daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	eagerNo, err := precipIndicesEager(daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fusedNo.R95pTOT != nil || eagerNo.R95pTOT != nil {
		t.Fatal("R95pTOT should be nil without a baseline")
	}
	requireBitIdentical(t, "PRCPTOT/no95", fusedNo.PRCPTOT, eagerNo.PRCPTOT)
}
