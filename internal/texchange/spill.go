package texchange

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Spill files follow the dls.CopyVerified discipline: the payload
// lands in a temporary file in the spill directory, is re-read and
// verified against the in-flight checksum, and only then renamed into
// place — a crash or torn write leaves no spill file a later load
// could trust. The format is a tiny header (magic, element count)
// followed by little-endian float32 payload bytes.

const spillMagic = "TXS1"

// writeSpill atomically writes data to path.
func writeSpill(path string, data []float32) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	h := sha256.New()
	w := bufio.NewWriterSize(io.MultiWriter(tmp, h), 1<<18)
	if _, err := w.WriteString(spillMagic); err != nil {
		return fail(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fail(err)
	}
	var buf [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Re-read and verify the landed bytes before the rename makes them
	// addressable.
	back, err := os.Open(tmpName)
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	h2 := sha256.New()
	_, err = io.Copy(h2, back)
	if cerr := back.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	if got, want := fmt.Sprintf("%x", h2.Sum(nil)), fmt.Sprintf("%x", h.Sum(nil)); got != want {
		os.Remove(tmpName)
		return fmt.Errorf("texchange: spill checksum mismatch: %s vs %s", got, want)
	}
	return os.Rename(tmpName, path)
}

// readSpill loads a spill file written by writeSpill, checking the
// element count against what the exchange expects.
func readSpill(path string, want int) ([]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<18)
	magic := make([]byte, len(spillMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != spillMagic {
		return nil, fmt.Errorf("texchange: bad spill magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(hdr[:]))
	if n != want {
		return nil, fmt.Errorf("texchange: spill holds %d elements, want %d", n, want)
	}
	out := make([]float32, n)
	var buf [4]byte
	for i := range out {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
	}
	return out, nil
}
