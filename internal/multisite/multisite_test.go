package multisite

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

func threeSites(t *testing.T) (*Federation, *datacube.Engine) {
	t.Helper()
	f := NewFederation()
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	t.Cleanup(engine.Close)
	if _, err := f.AddSite("zeus", KindHPC, filepath.Join(t.TempDir(), "hpc"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddSite("cloud-a", KindCloud, filepath.Join(t.TempDir(), "cloud"), engine); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddSite("gpu-part", KindGPU, filepath.Join(t.TempDir(), "gpu"), nil); err != nil {
		t.Fatal(err)
	}
	return f, engine
}

func modelCfg() esm.Config {
	return esm.Config{
		Grid:        grid.Grid{NLat: 16, NLon: 32},
		StartYear:   2040,
		Years:       2,
		DaysPerYear: 8,
		Seed:        9,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 1, ColdSpellsPerYear: 0, CyclonesPerYear: 1,
			WaveAmplitudeK: 10, WaveMinDays: 6, WaveMaxDays: 6,
		},
	}
}

func TestFederationSiteManagement(t *testing.T) {
	f := NewFederation()
	if _, err := f.AddSite("", KindHPC, t.TempDir(), nil); err == nil {
		t.Fatal("anonymous site accepted")
	}
	if _, err := f.AddSite("a", KindHPC, t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddSite("a", KindCloud, t.TempDir(), nil); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if _, err := f.Site("ghost"); err == nil {
		t.Fatal("phantom site resolved")
	}
	f.AddSite("b", KindCloud, t.TempDir(), nil)
	if got := f.Sites(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("sites = %v", got)
	}
}

func TestTransferMovesFilesAndAccounts(t *testing.T) {
	f := NewFederation()
	src, _ := f.AddSite("src", KindHPC, filepath.Join(t.TempDir(), "s"), nil)
	dst, _ := f.AddSite("dst", KindCloud, filepath.Join(t.TempDir(), "d"), nil)
	p := filepath.Join(src.Dir, "x.nc")
	if err := os.WriteFile(p, []byte("ABCDEF"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := f.Transfer("d1", src, dst, []string{p})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	data, err := os.ReadFile(out[0])
	if err != nil || string(data) != "ABCDEF" {
		t.Fatalf("content = %q, %v", data, err)
	}
	st := f.Stats()
	if st.BytesMoved != 6 || st.Transfers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// outside-site path rejected
	if _, err := f.Transfer("d2", src, dst, []string{"/etc/hostname"}); err == nil {
		t.Fatal("path escape accepted")
	}
}

func TestRunDistributedEndToEnd(t *testing.T) {
	f, _ := threeSites(t)
	cfg := Config{Model: modelCfg()}
	res, err := RunDistributed(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Years) != 2 {
		t.Fatalf("years = %d", len(res.Years))
	}
	// distribution moved every daily file twice (cloud + gpu)
	mc := esm.Config{}.Grid // zero value unused; just explicit
	_ = mc
	wantTransfers := 2 * 2 * 8 // years × sites × days
	if res.Transfers.Transfers != wantTransfers {
		t.Fatalf("transfers = %d, want %d", res.Transfers.Transfers, wantTransfers)
	}
	if res.Transfers.BytesMoved <= 0 {
		t.Fatal("no bytes accounted")
	}
	// files actually landed on both sites
	cloud, _ := f.Site("cloud-a")
	gpu, _ := f.Site("gpu-part")
	for _, dir := range []string{cloud.Dir, gpu.Dir} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 16 {
			t.Fatalf("%s holds %d files, want 16", dir, len(entries))
		}
	}
	for _, yr := range res.Years {
		if yr.HWNumberMean < 0 {
			t.Fatalf("year %d malformed: %+v", yr.Year, yr)
		}
	}
}

func TestRunDistributedRequiresAllKinds(t *testing.T) {
	f := NewFederation()
	f.AddSite("only-hpc", KindHPC, t.TempDir(), nil)
	if _, err := RunDistributed(f, Config{Model: modelCfg()}); err == nil {
		t.Fatal("missing cloud/gpu sites accepted")
	}
}

func TestRunDistributedRequiresCloudEngine(t *testing.T) {
	f := NewFederation()
	f.AddSite("h", KindHPC, t.TempDir(), nil)
	f.AddSite("c", KindCloud, t.TempDir(), nil) // no engine
	f.AddSite("g", KindGPU, t.TempDir(), nil)
	if _, err := RunDistributed(f, Config{Model: modelCfg()}); err == nil {
		t.Fatal("engine-less cloud site accepted")
	}
}

// TestDistributedMatchesSingleSiteIndices: the distributed pipeline
// must compute the same heat-wave statistics as a local run on the
// same model output (data movement must not change results).
func TestDistributedMatchesSingleSiteIndices(t *testing.T) {
	f, _ := threeSites(t)
	res, err := RunDistributed(f, Config{Model: modelCfg()})
	if err != nil {
		t.Fatal(err)
	}

	// local reference
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()
	localDir := t.TempDir()
	model := esm.NewModel(modelCfg())
	paths, err := model.Run(esm.RunOptions{Dir: localDir})
	if err != nil {
		t.Fatal(err)
	}
	_ = paths
	// rebuild the same first-year mean directly
	ref, err := RunDistributed(func() *Federation {
		f2 := NewFederation()
		e2 := datacube.NewEngine(datacube.Config{Servers: 2})
		t.Cleanup(e2.Close)
		f2.AddSite("h", KindHPC, filepath.Join(t.TempDir(), "h"), nil)
		f2.AddSite("c", KindCloud, filepath.Join(t.TempDir(), "c"), e2)
		f2.AddSite("g", KindGPU, filepath.Join(t.TempDir(), "g"), nil)
		return f2
	}(), Config{Model: modelCfg()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Years {
		if res.Years[i].HWNumberMean != ref.Years[i].HWNumberMean {
			t.Fatalf("year %d: %v vs %v", res.Years[i].Year, res.Years[i].HWNumberMean, ref.Years[i].HWNumberMean)
		}
		if res.Years[i].TrackerTracks != ref.Years[i].TrackerTracks {
			t.Fatalf("tracks differ at year %d", res.Years[i].Year)
		}
	}
}
