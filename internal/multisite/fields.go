package multisite

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ncdf"
)

// instant is one 6-hourly field set loaded on the GPU site.
type instant struct {
	day, step       int
	psl, vort, t500 *grid.Field
	channels        map[string]*grid.Field
}

// loadFields reads the TC-branch variables from daily files into
// per-instant field sets (the GPU-site-local analogue of the core
// workflow's tc_preprocess task).
func loadFields(files []string, g grid.Grid) ([]instant, error) {
	vars := []string{"PSL", "U850", "V850", "T500", "VORT850"}
	var out []instant
	for _, path := range files {
		_, dayOfYear, ok := esm.ParseFileName(path)
		if !ok {
			return nil, fmt.Errorf("multisite: unparseable model file %q", path)
		}
		perVar := make(map[string][]float32, len(vars))
		for _, v := range vars {
			_, vv, err := ncdf.ReadVariableFile(path, v)
			if err != nil {
				return nil, err
			}
			perVar[v] = vv.Data
		}
		size := g.Size()
		for s := 0; s < esm.StepsPerDay; s++ {
			mk := func(name string) *grid.Field {
				f := grid.NewField(g)
				copy(f.Data, perVar[name][s*size:(s+1)*size])
				return f
			}
			psl, u, v := mk("PSL"), mk("U850"), mk("V850")
			t500, vort := mk("T500"), mk("VORT850")
			w := grid.NewField(g)
			for i := range w.Data {
				w.Data[i] = float32(math.Hypot(float64(u.Data[i]), float64(v.Data[i])))
			}
			out = append(out, instant{
				day: dayOfYear, step: s,
				psl: psl, vort: vort, t500: t500,
				channels: map[string]*grid.Field{
					"PSL": psl, "WSPD": w, "VORT850": vort, "T500": t500,
				},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].day != out[j].day {
			return out[i].day < out[j].day
		}
		return out[i].step < out[j].step
	})
	return out, nil
}
