package indices

import (
	"fmt"

	"repro/internal/datacube"
	"repro/internal/esm"
)

// This file adds the ETCCDI precipitation extremes to the index suite:
// PRCPTOT (annual total), Rx1day (annual maximum 1-day precipitation),
// CDD (consecutive dry days) and R95pTOT (precipitation on very wet
// days, above the historical 95th wet-day percentile).

// WetDayThresholdMMDay is the ETCCDI wet-day definition (≥ 1 mm/day).
const WetDayThresholdMMDay = 1.0

// DailyPrecipFromFiles imports a year of daily model files and reduces
// the sub-daily PRECT samples to daily means [mm/day].
func DailyPrecipFromFiles(e *datacube.Engine, files []string, stepsPerDay int) (*datacube.Cube, error) {
	if stepsPerDay <= 0 {
		stepsPerDay = esm.StepsPerDay
	}
	pr, err := e.ImportFiles(files, "PRECT", "time")
	if err != nil {
		return nil, err
	}
	defer pr.Delete()
	return pr.ReduceGroup("avg", stepsPerDay)
}

// BuildPrecipBaseline estimates the per-cell, per-day-of-year 95th
// percentile of daily precipitation from histYears of the
// historical-scenario model (no seeded events), the base-period
// climatology R95pTOT compares against.
func BuildPrecipBaseline(e *datacube.Engine, base esm.Config, histYears int) (*datacube.Cube, error) {
	if histYears < 2 {
		return nil, fmt.Errorf("indices: need at least 2 historical years, got %d", histYears)
	}
	cfg := base
	cfg.Events = &esm.EventConfig{} // climatology must exclude seeded extremes
	cfg.Years = histYears
	model := esm.NewModel(cfg)
	mc := model.Config()
	cells := mc.Grid.Size()
	days := mc.DaysPerYear

	// daily-mean precipitation, year-major: buf[(y*days+d)*cells + cell]
	buf := make([]float32, histYears*days*cells)
	for y := 0; y < histYears; y++ {
		for d := 0; d < days; d++ {
			out := model.StepDay()
			if out == nil {
				return nil, fmt.Errorf("indices: model exhausted at year %d day %d", y, d)
			}
			base := (y*days + d) * cells
			for s := 0; s < esm.StepsPerDay; s++ {
				f, err := out.Field(s, "PRECT")
				if err != nil {
					return nil, err
				}
				for c := 0; c < cells; c++ {
					buf[base+c] += f.Data[c] / esm.StepsPerDay
				}
			}
		}
	}
	stacked, err := e.NewCubeFromFunc("PR_HIST",
		[]datacube.Dimension{{Name: "lat", Size: mc.Grid.NLat}, {Name: "lon", Size: mc.Grid.NLon}},
		datacube.Dimension{Name: "time", Size: histYears * days},
		func(row, t int) float32 { return buf[t*cells+row] })
	if err != nil {
		return nil, err
	}
	defer stacked.Delete()
	p95, err := stacked.ReduceStride("quantile", days, 0.95)
	if err != nil {
		return nil, err
	}
	p95.SetMeasure("PR95_CLIM")
	p95.SetMeta("role", "precip_baseline")
	return p95, nil
}

// PrecipResult bundles one year's precipitation indices (per cell,
// implicit length 1).
type PrecipResult struct {
	// PRCPTOT is the annual precipitation total [mm].
	PRCPTOT *datacube.Cube
	// Rx1day is the maximum 1-day precipitation [mm/day].
	Rx1day *datacube.Cube
	// CDD is the longest run of dry days (< 1 mm/day).
	CDD *datacube.Cube
	// R95pTOT is the total precipitation on days exceeding the
	// historical 95th percentile [mm]; nil when no baseline was given.
	R95pTOT *datacube.Cube
}

// Delete frees all result cubes.
func (r *PrecipResult) Delete() {
	for _, c := range []*datacube.Cube{r.PRCPTOT, r.Rx1day, r.CDD, r.R95pTOT} {
		if c != nil {
			_ = c.Delete()
		}
	}
}

// PrecipIndices computes the precipitation extremes from a daily-mean
// precipitation cube. p95 may be nil to skip R95pTOT. An optional
// tolerance enables coarse-first execution over the daily cube's
// resolution pyramid (datacube.Plan.Tolerance); omitted or zero keeps
// the results byte-identical to exact execution. The three
// unconditional reductions run as one fused three-output pass over
// daily, and R95pTOT as one fused linear chain (its mask/wet-day
// intermediates never materialize); precipIndicesEager is the
// operator-at-a-time original, kept as the cross-check oracle.
func PrecipIndices(daily *datacube.Cube, p95 *datacube.Cube, tolerance ...float64) (*PrecipResult, error) {
	var tol float64
	if len(tolerance) > 0 {
		tol = tolerance[0]
	}
	out := &PrecipResult{}
	outs, err := daily.Lazy().Tolerance(tol).ExecuteBranches(
		datacube.Branch().Reduce("sum"),
		datacube.Branch().Reduce("max"),
		datacube.Branch().Reduce("longest_run_below", WetDayThresholdMMDay),
	)
	if err != nil {
		return nil, err
	}
	out.PRCPTOT, out.Rx1day, out.CDD = outs[0], outs[1], outs[2]
	out.PRCPTOT.SetMeta("index", "PRCPTOT")
	out.Rx1day.SetMeta("index", "Rx1day")
	out.CDD.SetMeta("index", "CDD")

	if p95 != nil {
		if daily.ImplicitLen() != p95.ImplicitLen() {
			out.Delete()
			return nil, fmt.Errorf("indices: daily has %d days, baseline %d", daily.ImplicitLen(), p95.ImplicitLen())
		}
		// very-wet-day mask times precipitation, totaled — one fused chain
		if out.R95pTOT, err = daily.Lazy().
			Intercube(p95, "sub").
			Apply("x>0 ? 1 : 0").
			Intercube(daily, "mul").
			Reduce("sum").
			Tolerance(tol).
			Execute(); err != nil {
			out.Delete()
			return nil, err
		}
		out.R95pTOT.SetMeta("index", "R95pTOT")
	}
	return out, nil
}

// precipIndicesEager is the original operator-at-a-time implementation.
func precipIndicesEager(daily *datacube.Cube, p95 *datacube.Cube) (*PrecipResult, error) {
	out := &PrecipResult{}
	var err error
	if out.PRCPTOT, err = daily.Reduce("sum"); err != nil {
		return nil, err
	}
	out.PRCPTOT.SetMeta("index", "PRCPTOT")
	if out.Rx1day, err = daily.Reduce("max"); err != nil {
		return nil, err
	}
	out.Rx1day.SetMeta("index", "Rx1day")
	if out.CDD, err = daily.Reduce("longest_run_below", WetDayThresholdMMDay); err != nil {
		return nil, err
	}
	out.CDD.SetMeta("index", "CDD")

	if p95 != nil {
		if daily.ImplicitLen() != p95.ImplicitLen() {
			out.Delete()
			return nil, fmt.Errorf("indices: daily has %d days, baseline %d", daily.ImplicitLen(), p95.ImplicitLen())
		}
		// mask of very wet days, then total their precipitation
		anom, err := daily.Intercube(p95, "sub")
		if err != nil {
			out.Delete()
			return nil, err
		}
		defer anom.Delete()
		mask, err := anom.Apply("x>0 ? 1 : 0")
		if err != nil {
			out.Delete()
			return nil, err
		}
		defer mask.Delete()
		wet, err := mask.Intercube(daily, "mul")
		if err != nil {
			out.Delete()
			return nil, err
		}
		defer wet.Delete()
		if out.R95pTOT, err = wet.Reduce("sum"); err != nil {
			out.Delete()
			return nil, err
		}
		out.R95pTOT.SetMeta("index", "R95pTOT")
	}
	return out, nil
}
