package multisite

import "repro/internal/obs"

// msMetrics holds the federation's instruments. With no registry they
// are detached no-ops and Stats() stays authoritative.
type msMetrics struct {
	transfers   *obs.Counter
	bytes       *obs.Counter
	retries     *obs.Counter
	failures    *obs.Counter
	breakerOpen *obs.GaugeVec // 1 while the site's circuit is open
	breakerCons *obs.GaugeVec // consecutive failures per site
}

func newMSMetrics(reg *obs.Registry) *msMetrics {
	return &msMetrics{
		transfers: reg.Counter("multisite_transfers_total",
			"Files successfully transferred between federation sites."),
		bytes: reg.Counter("multisite_transfer_bytes_total",
			"Bytes moved between federation sites."),
		retries: reg.Counter("multisite_transfer_retries_total",
			"Transfer attempts retried after a transient failure."),
		failures: reg.Counter("multisite_transfer_failures_total",
			"Transfers that exhausted retries and failed."),
		breakerOpen: reg.GaugeVec("multisite_breaker_open",
			"1 while the destination site's circuit breaker is open.", "site"),
		breakerCons: reg.GaugeVec("multisite_breaker_consecutive_failures",
			"Consecutive transfer failures recorded against the site.", "site"),
	}
}

// SetMetrics attaches the federation's instruments (and those of its
// embedded Data Logistics Service) to reg. Call before the first
// Transfer; passing nil detaches them.
func (f *Federation) SetMetrics(reg *obs.Registry) {
	f.mu.Lock()
	f.met = newMSMetrics(reg)
	svc := f.dls
	f.mu.Unlock()
	svc.SetMetrics(reg)
}

// PrimeMetrics registers the federation metric families on reg so a
// scrape shows the full surface before any transfer happens.
func PrimeMetrics(reg *obs.Registry) { newMSMetrics(reg) }
