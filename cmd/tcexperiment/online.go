package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ml"
	"repro/internal/tctrack"
	"repro/internal/texchange"
)

// runOnline is the -online mode: instead of pre-training the localizer
// offline, it starts from random weights and learns while the
// "simulation" runs. Training years are published step by step into an
// in-memory tensor exchange; a consumer drains the exchange and feeds
// an OnlineTrainer, which hot-swaps improved weights into the live
// localizer. A fixed held-out probe set is re-evaluated at checkpoints
// so the printed table shows detection quality as a function of
// completed training steps and weight generation.
func runOnline(cfg esm.Config, trainSeeds, patch, swapEvery int, threshold, minDrop float64, workers int) {
	loc, err := ml.NewLocalizer(patch, patch, 7)
	if err != nil {
		log.Fatal(err)
	}
	loc.Configure(ml.Params{Workers: workers})
	if _, err := loc.Compile(ml.Params{}); err != nil {
		log.Fatal(err)
	}
	const replay = 4
	tr, err := ml.NewOnlineTrainer(ml.OnlineConfig{
		Target: loc, SwapEvery: swapEvery, Balance: true, Queue: 1024,
		LR: 2e-3, BatchSize: 32, Replay: replay,
	})
	if err != nil {
		log.Fatal(err)
	}
	x := texchange.New(texchange.Config{})
	defer x.Close()

	probe := buildProbe(cfg, 99, minDrop)
	if len(probe) == 0 {
		log.Fatal("online: probe year produced no active-storm instants")
	}
	sampled := (esm.StepsPerDay + 1) / 2
	total := trainSeeds * cfg.DaysPerYear * sampled
	fmt.Printf("online training: %d years x %d days, %d instants via exchange, swap every %d steps\n",
		trainSeeds, cfg.DaysPerYear, total, swapEvery)
	fmt.Printf("%8s %8s %5s %8s %8s %8s\n", "fed", "steps", "gen", "POD", "FAR", "err km")
	report := func(fed int) {
		st := tr.Stats()
		sk := evalProbe(loc, probe, cfg.Grid, threshold)
		fmt.Printf("%8d %8d %5d %8.2f %8.2f %8.0f\n",
			fed, st.Steps, loc.WeightsGeneration(), sk.POD, sk.FAR, sk.MeanErrorKm)
	}
	report(0)

	// Producer: simulate the training years, publishing every sampled
	// step's channel fields zero-copy into the exchange with the
	// ground-truth centers riding along in tensor metadata.
	prodErr := make(chan error, 1)
	go func() {
		prodErr <- produceOnline(x, cfg, trainSeeds, minDrop)
	}()

	// Consumer: drain the exchange in publish order and feed the
	// trainer. Names are sequence-numbered, so the consumer needs no
	// knowledge of the simulation calendar.
	ckpt := total / 5
	if ckpt < 1 {
		ckpt = 1
	}
	for seq := 0; seq < total; seq++ {
		fields, centers, err := consumeItem(x, cfg.Grid, seq)
		if err != nil {
			log.Fatal(err)
		}
		if !tr.Feed(fields, centers) {
			log.Fatalf("online: trainer dropped item %d (queue full)", seq)
		}
		if fed := seq + 1; fed%ckpt == 0 && fed < total {
			// Let the trainer drain its queue before probing, so the row
			// reflects weights trained on everything fed so far.
			waitProcessed(tr, uint64(fed), time.Minute)
			report(fed)
		}
	}
	if err := <-prodErr; err != nil {
		log.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}
	report(total)

	st, xs := tr.Stats(), x.Stats()
	fmt.Printf("\ntrainer: %d fed, %d samples, %d steps, %d swaps, last loss %.4f\n",
		st.Fed, st.Samples, st.Steps, st.Swaps, st.LastLoss)
	fmt.Printf("exchange: %d publishes, %d blocking waits, %d spills (%d B resident at end)\n",
		xs.Publishes, xs.Waits, xs.Spills, xs.ResidentBytes)
	fmt.Println("\nshape check: POD rises and center error falls as generations land —")
	fmt.Println("the localizer improves mid-run without ever being taken offline.")
}

// onlineName is the exchange naming scheme for the training feed:
// sequence-numbered instants, one tensor per CNN input channel.
func onlineName(seq int, channel string) string {
	return fmt.Sprintf("online/%06d/%s", seq, channel)
}

// produceOnline simulates trainSeeds years and publishes every other
// model step's channel fields. The tensor data aliases the simulator's
// field buffers — no copies on the producer side.
func produceOnline(x *texchange.Exchange, cfg esm.Config, trainSeeds int, minDrop float64) error {
	seq := 0
	for e := 0; e < trainSeeds; e++ {
		m := esm.NewModel(withSeed(cfg, int64(11+e)))
		gt := m.GroundTruth()
		for {
			day := m.StepDay()
			if day == nil {
				break
			}
			for s := 0; s < esm.StepsPerDay; s += 2 {
				fields, err := ml.ChannelFields(day, s)
				if err != nil {
					return err
				}
				var centers []string
				for _, c := range gt.Cyclones {
					if p, ok := c.Active(day.DayOfYear, s); ok && p.PressureDrop >= minDrop {
						ci, cj := day.Grid.CellOf(p.Lat, p.Lon)
						centers = append(centers, fmt.Sprintf("%d:%d", ci, cj))
					}
				}
				meta := map[string]string{"centers": strings.Join(centers, " ")}
				for _, ch := range ml.Channels {
					t := texchange.Tensor{
						Name:  onlineName(seq, ch),
						Shape: []int{day.Grid.NLat, day.Grid.NLon},
						Data:  fields[ch].Data,
						Meta:  meta,
					}
					if _, err := x.Publish(t); err != nil {
						return err
					}
				}
				seq++
			}
		}
	}
	return nil
}

// consumeItem waits for one sequence-numbered instant's channel tensors
// and rebuilds the field map plus decoded truth centers.
func consumeItem(x *texchange.Exchange, g grid.Grid, seq int) (map[string]*grid.Field, []ml.Center, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fields := make(map[string]*grid.Field, len(ml.Channels))
	var centers []ml.Center
	for i, ch := range ml.Channels {
		t, err := x.Wait(ctx, onlineName(seq, ch), 1)
		if err != nil {
			return nil, nil, fmt.Errorf("online: waiting for instant %d channel %s: %w", seq, ch, err)
		}
		fields[ch] = &grid.Field{Grid: g, Data: t.Data}
		if i == 0 && t.Meta["centers"] != "" {
			for _, tok := range strings.Fields(t.Meta["centers"]) {
				var r, c int
				if _, err := fmt.Sscanf(tok, "%d:%d", &r, &c); err != nil {
					return nil, nil, fmt.Errorf("online: bad center token %q: %w", tok, err)
				}
				centers = append(centers, ml.Center{Row: r, Col: c})
			}
		}
	}
	for _, ch := range ml.Channels {
		x.Remove(onlineName(seq, ch))
	}
	return fields, centers, nil
}

// probeInstant is one held-out evaluation instant: the CNN input
// fields plus the active ground-truth storms at that moment.
type probeInstant struct {
	fields map[string]*grid.Field
	truth  []esm.TrackPoint
}

// buildProbe samples active-storm instants from one held-out year. The
// same instants are re-scored at every checkpoint, so rows in the
// quality table differ only by the weights in effect.
func buildProbe(cfg esm.Config, seed int64, minDrop float64) []probeInstant {
	const maxInstants = 48
	m := esm.NewModel(withSeed(cfg, seed))
	gt := m.GroundTruth()
	var out []probeInstant
	for len(out) < maxInstants {
		day := m.StepDay()
		if day == nil {
			break
		}
		for s := 0; s < esm.StepsPerDay; s += 2 {
			var truth []esm.TrackPoint
			for _, c := range gt.Cyclones {
				if p, ok := c.Active(day.DayOfYear, s); ok && p.PressureDrop >= minDrop {
					truth = append(truth, p)
				}
			}
			if len(truth) == 0 {
				continue
			}
			fields, err := ml.ChannelFields(day, s)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, probeInstant{fields: fields, truth: truth})
			if len(out) == maxInstants {
				break
			}
		}
	}
	return out
}

// evalProbe scores the live localizer (current weight generation) on
// the fixed probe set.
func evalProbe(loc *ml.Localizer, probe []probeInstant, g grid.Grid, threshold float64) tctrack.Skill {
	var instants []tctrack.Instant
	for _, p := range probe {
		dets, err := loc.DetectFields(p.fields, g, threshold)
		if err != nil {
			log.Fatal(err)
		}
		var asDet []tctrack.Detection
		for _, d := range dets {
			asDet = append(asDet, tctrack.Detection{Lat: d.Lat, Lon: d.Lon})
		}
		instants = append(instants, tctrack.Instant{Truth: p.truth, Dets: asDet})
	}
	return tctrack.Evaluate(instants, 2000)
}

// waitProcessed polls until the trainer has fully trained on the first
// target fed items or the timeout elapses.
func waitProcessed(tr *ml.OnlineTrainer, target uint64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for tr.Stats().Processed < target && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
