package viz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
)

func rampField(g grid.Grid) *grid.Field {
	f := grid.NewField(g)
	for i := 0; i < g.NLat; i++ {
		for j := 0; j < g.NLon; j++ {
			f.Set(i, j, float32(i))
		}
	}
	return f
}

func TestPalettesEndpoints(t *testing.T) {
	for name, pal := range map[string]Palette{"heat": Heat, "cool": Cool, "div": Diverging} {
		r0, g0, b0 := pal(0)
		r1, g1, b1 := pal(1)
		if r0 == r1 && g0 == g1 && b0 == b1 {
			t.Fatalf("%s palette constant", name)
		}
		// out-of-range input clamps, not panics
		pal(-5)
		pal(5)
	}
	// heat low end is light, high end dark red
	r, g, b := Heat(0)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("heat(0) = %d,%d,%d", r, g, b)
	}
	r, g, b = Heat(1)
	if r >= 255 || g != 0 || b != 0 {
		t.Fatalf("heat(1) = %d,%d,%d", r, g, b)
	}
}

func TestWritePGMFormat(t *testing.T) {
	g := grid.Grid{NLat: 4, NLon: 6}
	path := filepath.Join(t.TempDir(), "m.pgm")
	if err := WritePGM(path, rampField(g), 0, 3); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n6 4\n255\n")) {
		t.Fatalf("header = %q", data[:12])
	}
	pixels := data[len("P5\n6 4\n255\n"):]
	if len(pixels) != 24 {
		t.Fatalf("pixel count = %d", len(pixels))
	}
	// north (max row index) first → brightest first
	if pixels[0] != 255 || pixels[len(pixels)-1] != 0 {
		t.Fatalf("orientation wrong: first=%d last=%d", pixels[0], pixels[len(pixels)-1])
	}
}

func TestWritePGMAutoScale(t *testing.T) {
	g := grid.Grid{NLat: 2, NLon: 2}
	f := grid.NewField(g)
	copy(f.Data, []float32{10, 10, 10, 20})
	path := filepath.Join(t.TempDir(), "m.pgm")
	if err := WritePGM(path, f, 0, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	px := data[len("P5\n2 2\n255\n"):]
	if px[1] != 255 { // the 20 sits at row 1 col 1 → rendered first row second col
		t.Fatalf("autoscale wrong: %v", px)
	}
}

func TestWritePGMConstantField(t *testing.T) {
	g := grid.Grid{NLat: 2, NLon: 2}
	f := grid.NewField(g)
	if err := WritePGM(filepath.Join(t.TempDir(), "c.pgm"), f, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestWritePPMFormat(t *testing.T) {
	g := grid.Grid{NLat: 3, NLon: 5}
	path := filepath.Join(t.TempDir(), "m.ppm")
	if err := WritePPM(path, rampField(g), 0, 2, Heat); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !bytes.HasPrefix(data, []byte("P6\n5 3\n255\n")) {
		t.Fatalf("header = %q", data[:12])
	}
	if len(data)-len("P6\n5 3\n255\n") != 45 {
		t.Fatalf("payload = %d", len(data))
	}
	// nil palette defaults
	if err := WritePPM(path, rampField(g), 0, 2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIMapShapeAndLegend(t *testing.T) {
	g := grid.Grid{NLat: 10, NLon: 20}
	out := ASCIIMap(rampField(g), 72)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // 10 rows + legend
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[10], "min=") {
		t.Fatalf("legend missing: %q", lines[10])
	}
	// top line (north) should be densest glyphs
	if !strings.Contains(lines[0], "@") {
		t.Fatalf("north row not dense: %q", lines[0])
	}
	if strings.ContainsAny(lines[9], "@#%") {
		t.Fatalf("south row too dense: %q", lines[9])
	}
}

func TestASCIIMapDownsamples(t *testing.T) {
	g := grid.Grid{NLat: 48, NLon: 192}
	out := ASCIIMap(rampField(g), 64)
	lines := strings.Split(out, "\n")
	if len(lines[0]) != 64 {
		t.Fatalf("cols = %d, want 64", len(lines[0]))
	}
}

func TestASCIIProfile(t *testing.T) {
	out := ASCIIProfile([]ProfilePoint{
		{Label: "-60", Value: 250},
		{Label: "0", Value: 300},
		{Label: "60", Value: 260},
	}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// the max-value row has the longest bar
	if strings.Count(lines[2], "▆") != 20 {
		t.Fatalf("max row bar = %q", lines[2])
	}
	if strings.Count(lines[1], "▆") != 0 {
		t.Fatalf("min row bar = %q", lines[1])
	}
	if !strings.Contains(lines[2], "300") {
		t.Fatalf("value missing: %q", lines[2])
	}
	if got := ASCIIProfile(nil, 20); !strings.Contains(got, "no data") {
		t.Fatalf("empty = %q", got)
	}
	// constant profile does not divide by zero
	ASCIIProfile([]ProfilePoint{{Label: "a", Value: 5}, {Label: "b", Value: 5}}, 0)
}

func TestASCIIMapWithMarkers(t *testing.T) {
	g := grid.Grid{NLat: 12, NLon: 24}
	f := grid.NewField(g) // constant zero background
	out := ASCIIMapWithMarkers(f, 24, []Marker{{Lat: 0, Lon: 180, Glyph: 'X'}, {Lat: 80, Lon: 10}})
	if !strings.Contains(out, "X") {
		t.Fatal("explicit marker missing")
	}
	if !strings.Contains(out, "O") {
		t.Fatal("default marker glyph missing")
	}
}
