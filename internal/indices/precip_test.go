package indices

import (
	"testing"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

// dailyPrecipCube builds a daily-mean precipitation cube directly.
func dailyPrecipCube(t *testing.T, e *datacube.Engine, g grid.Grid, days int, f func(row, day int) float32) *datacube.Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("PRECT",
		[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
		datacube.Dimension{Name: "time", Size: days}, f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPrecipIndicesKnownValues(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 2, NLon: 2}
	const days = 10
	// row 0: dry except day 3 (20 mm); rows 1..: constant 2 mm/day
	daily := dailyPrecipCube(t, e, g, days, func(row, day int) float32 {
		if row == 0 {
			if day == 3 {
				return 20
			}
			return 0.2
		}
		return 2
	})
	res, err := PrecipIndices(daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()
	tot, _ := res.PRCPTOT.Row(0)
	if tot[0] != 20+9*0.2 {
		t.Fatalf("PRCPTOT = %v", tot)
	}
	rx, _ := res.Rx1day.Row(0)
	if rx[0] != 20 {
		t.Fatalf("Rx1day = %v", rx)
	}
	cdd, _ := res.CDD.Row(0)
	if cdd[0] != 6 { // days 4..9 dry (0.2 < 1)
		t.Fatalf("CDD = %v, want 6", cdd)
	}
	cdd1, _ := res.CDD.Row(1)
	if cdd1[0] != 0 {
		t.Fatalf("wet cell CDD = %v", cdd1)
	}
	if res.R95pTOT != nil {
		t.Fatal("R95pTOT computed without baseline")
	}
}

func TestPrecipR95pAgainstBaseline(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 2, NLon: 2}
	const days = 10
	daily := dailyPrecipCube(t, e, g, days, func(row, day int) float32 {
		if day == 5 {
			return 30 // one extreme day everywhere
		}
		return 2
	})
	// constant baseline p95 = 10 mm/day
	p95 := dailyPrecipCube(t, e, g, days, func(int, int) float32 { return 10 })
	p95.SetMeasure("PR95_CLIM")
	res, err := PrecipIndices(daily, p95)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()
	r95, _ := res.R95pTOT.Row(0)
	if r95[0] != 30 {
		t.Fatalf("R95pTOT = %v, want 30 (only the extreme day)", r95)
	}
	// shape mismatch rejected
	short := dailyPrecipCube(t, e, g, 5, func(int, int) float32 { return 1 })
	if _, err := PrecipIndices(short, p95); err == nil {
		t.Fatal("day mismatch accepted")
	}
}

func TestDailyPrecipFromFiles(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 12, NLon: 24}
	const days = 6
	m := esm.NewModel(esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 3, Events: &esm.EventConfig{}})
	files, err := m.Run(esm.RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	daily, err := DailyPrecipFromFiles(e, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if daily.Rows() != g.Size() || daily.ImplicitLen() != days {
		t.Fatalf("shape = %dx%d", daily.Rows(), daily.ImplicitLen())
	}
	// precip is non-negative
	for r := 0; r < daily.Rows(); r += 37 {
		row, _ := daily.Row(r)
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative precip %v at row %d", v, r)
			}
		}
	}
}

func TestBuildPrecipBaselineAndR95(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 12, NLon: 24}
	const days = 8
	base := esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 11}
	p95, err := BuildPrecipBaseline(e, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p95.Rows() != g.Size() || p95.ImplicitLen() != days {
		t.Fatalf("baseline shape = %dx%d", p95.Rows(), p95.ImplicitLen())
	}
	if _, err := BuildPrecipBaseline(e, base, 1); err == nil {
		t.Fatal("single-year precip baseline accepted")
	}
	// an ordinary year: R95pTOT must be far below PRCPTOT
	m := esm.NewModel(base)
	files, err := m.Run(esm.RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	daily, err := DailyPrecipFromFiles(e, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PrecipIndices(daily, p95)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()
	totAgg, _ := res.PRCPTOT.AggregateRows("avg")
	defer totAgg.Delete()
	totRed, _ := totAgg.Reduce("avg")
	defer totRed.Delete()
	tot, _ := totRed.Scalar()
	r95Agg, _ := res.R95pTOT.AggregateRows("avg")
	defer r95Agg.Delete()
	r95Red, _ := r95Agg.Reduce("avg")
	defer r95Red.Delete()
	r95, _ := r95Red.Scalar()
	if tot <= 0 {
		t.Fatalf("PRCPTOT mean = %v", tot)
	}
	if r95 < 0 || r95 > 0.8*tot {
		t.Fatalf("R95pTOT mean %v implausible vs PRCPTOT %v", r95, tot)
	}
}
