// Package tosca models application topologies in the spirit of the
// OASIS TOSCA standard the eFlows4HPC stack uses: Alien4Cloud edits "an
// extended TOSCA format" describing "the topology of components
// involved in the workflow deployment and execution", which the Yorc
// orchestrator then deploys (§4.1).
//
// A Topology is a set of typed nodes with properties, host/dependency
// relationships and lifecycle operations. The package validates
// topologies (unique names, resolvable references, acyclic dependency
// graph) and computes deployment order. Serialization is JSON, the
// stdlib-friendly stand-in for TOSCA YAML.
package tosca

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// NodeType classifies topology nodes.
type NodeType string

// Common node types used by the climate workflow topology.
const (
	TypeCompute   NodeType = "eflows.nodes.Compute"   // an HPC allocation
	TypeSoftware  NodeType = "eflows.nodes.Software"  // installable component
	TypeContainer NodeType = "eflows.nodes.Container" // container image
	TypeData      NodeType = "eflows.nodes.Data"      // dataset managed by DLS
	TypeWorkflow  NodeType = "eflows.nodes.PyCOMPSs"  // the orchestrated app
)

// Node is one component of the topology.
type Node struct {
	// Name is unique within the topology.
	Name string `json:"name"`
	// Type classifies the node.
	Type NodeType `json:"type"`
	// Properties hold free-form configuration (partition, image name,
	// dataset URL, ...).
	Properties map[string]string `json:"properties,omitempty"`
	// HostedOn names the node this one is installed on (TOSCA HostedOn
	// relationship); empty for root nodes.
	HostedOn string `json:"hosted_on,omitempty"`
	// DependsOn lists nodes that must be deployed first (TOSCA
	// DependsOn relationship).
	DependsOn []string `json:"depends_on,omitempty"`
	// Lifecycle maps operation names (create, configure, start, stop,
	// delete) to the artifact/script identifier executed by the
	// orchestrator.
	Lifecycle map[string]string `json:"lifecycle,omitempty"`
}

// Topology is a named set of nodes plus workflow-level inputs.
type Topology struct {
	Name string `json:"name"`
	// Inputs declares the parameters a user supplies at launch time
	// (name → description).
	Inputs map[string]string `json:"inputs,omitempty"`
	Nodes  []Node            `json:"nodes"`
}

// Node returns the named node, or nil.
func (t *Topology) Node(name string) *Node {
	for i := range t.Nodes {
		if t.Nodes[i].Name == name {
			return &t.Nodes[i]
		}
	}
	return nil
}

// NodesOfType returns nodes of the given type in declaration order.
func (t *Topology) NodesOfType(nt NodeType) []*Node {
	var out []*Node
	for i := range t.Nodes {
		if t.Nodes[i].Type == nt {
			out = append(out, &t.Nodes[i])
		}
	}
	return out
}

// Validate checks structural integrity: non-empty name, unique node
// names, resolvable HostedOn/DependsOn references, and an acyclic
// combined relationship graph.
func (t *Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tosca: topology needs a name")
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("tosca: topology %q has no nodes", t.Name)
	}
	seen := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("tosca: node with empty name in %q", t.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("tosca: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
	}
	for _, n := range t.Nodes {
		if n.HostedOn != "" && !seen[n.HostedOn] {
			return fmt.Errorf("tosca: node %q hosted on unknown %q", n.Name, n.HostedOn)
		}
		for _, d := range n.DependsOn {
			if !seen[d] {
				return fmt.Errorf("tosca: node %q depends on unknown %q", n.Name, d)
			}
		}
	}
	if _, err := t.DeployOrder(); err != nil {
		return err
	}
	return nil
}

// DeployOrder returns node names in a valid deployment order: every
// node after its host and its dependencies. Order is deterministic.
func (t *Topology) DeployOrder() ([]string, error) {
	deps := make(map[string][]string, len(t.Nodes))
	for _, n := range t.Nodes {
		var d []string
		if n.HostedOn != "" {
			d = append(d, n.HostedOn)
		}
		d = append(d, n.DependsOn...)
		sort.Strings(d)
		deps[n.Name] = d
	}
	indeg := make(map[string]int, len(deps))
	dependents := make(map[string][]string, len(deps))
	for name, ds := range deps {
		indeg[name] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], name)
		}
	}
	var frontier []string
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	sort.Strings(frontier)
	var order []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		released := []string{}
		for _, s := range dependents[n] {
			indeg[s]--
			if indeg[s] == 0 {
				released = append(released, s)
			}
		}
		sort.Strings(released)
		frontier = append(frontier, released...)
		sort.Strings(frontier)
	}
	if len(order) != len(t.Nodes) {
		return nil, fmt.Errorf("tosca: cyclic relationships in topology %q", t.Name)
	}
	return order, nil
}

// UndeployOrder is DeployOrder reversed.
func (t *Topology) UndeployOrder() ([]string, error) {
	order, err := t.DeployOrder()
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Marshal serializes the topology to pretty JSON.
func (t *Topology) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Parse deserializes and validates a topology.
func Parse(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tosca: parse: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadFile reads and validates a topology file.
func LoadFile(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// ClimateTopology builds the case study's topology: a compute target
// hosting the ESM binary, the datacube framework, the Python/ML stack
// packaged as a container image, the climatology dataset staged by the
// DLS, and the PyCOMPSs application depending on all of them (Figure 2).
func ClimateTopology(clusterName string) *Topology {
	return &Topology{
		Name: "climate-extremes",
		Inputs: map[string]string{
			"years":      "number of simulated years",
			"start_year": "first projection year",
			"grid":       "output grid (reduced|native)",
			"scenario":   "forcing scenario (historical|ssp245|ssp585)",
			"output_dir": "directory for result files and maps",
		},
		Nodes: []Node{
			{
				Name: "hpc_cluster", Type: TypeCompute,
				Properties: map[string]string{"name": clusterName, "scheduler": "lsf"},
			},
			{
				Name: "esm_model", Type: TypeSoftware, HostedOn: "hpc_cluster",
				Properties: map[string]string{"package": "cmcc-cm3-sim"},
				Lifecycle:  map[string]string{"create": "install-esm", "start": "noop"},
			},
			{
				Name: "datacube_engine", Type: TypeSoftware, HostedOn: "hpc_cluster",
				Properties: map[string]string{"package": "ophidia-like", "io_servers": "4"},
				Lifecycle:  map[string]string{"create": "install-datacube", "start": "start-io-servers"},
			},
			{
				Name: "ml_runtime", Type: TypeContainer, HostedOn: "hpc_cluster",
				Properties: map[string]string{"image": "climate-ml", "packages": "cnn-inference,tensors"},
				Lifecycle:  map[string]string{"create": "build-image"},
			},
			{
				Name: "climatology_baseline", Type: TypeData,
				DependsOn:  []string{"hpc_cluster"},
				Properties: map[string]string{"pipeline": "stage-in-climatology"},
			},
			{
				Name: "extremes_workflow", Type: TypeWorkflow, HostedOn: "hpc_cluster",
				DependsOn:  []string{"esm_model", "datacube_engine", "ml_runtime", "climatology_baseline"},
				Properties: map[string]string{"app": "climate-extremes"},
				Lifecycle:  map[string]string{"start": "run-pycompss-app"},
			},
		},
	}
}
