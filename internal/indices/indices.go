// Package indices computes the paper's climate extreme-event indices
// (§5.3) on top of the datacube engine: for heat waves and cold spells,
// per grid cell and year, (i) the longest wave duration, (ii) the
// number of waves and (iii) the frequency of yearly wave days.
//
// A heat wave is "a period of unusually hot weather that typically
// lasts six or more days" where "the maximum temperature must be 5 °C
// higher than the historical averages"; a cold wave is the mirror image
// on minimum temperature. The historical-average baseline is built once
// as an in-memory cube and reused across pipelines, the optimization
// the paper attributes to Ophidia's in-memory storage.
package indices

import (
	"fmt"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

func init() {
	// days_in_runs_above(threshold, minLen): total days belonging to
	// qualifying runs — the numerator of the frequency index.
	daysAbove := datacube.RowOp(func(row []float32, params []float64) float64 {
		th := paramAt(params, 0, 0)
		minLen := int(paramAt(params, 1, 1))
		total, cur := 0, 0
		flush := func() {
			if cur >= minLen {
				total += cur
			}
			cur = 0
		}
		for _, v := range row {
			if float64(v) > th {
				cur++
			} else {
				flush()
			}
		}
		flush()
		return float64(total)
	})
	daysBelow := datacube.RowOp(func(row []float32, params []float64) float64 {
		th := paramAt(params, 0, 0)
		minLen := int(paramAt(params, 1, 1))
		total, cur := 0, 0
		flush := func() {
			if cur >= minLen {
				total += cur
			}
			cur = 0
		}
		for _, v := range row {
			if float64(v) < th {
				cur++
			} else {
				flush()
			}
		}
		flush()
		return float64(total)
	})
	mustRegister("days_in_runs_above", daysAbove)
	mustRegister("days_in_runs_below", daysBelow)
	// Interval forms for coarse-first tolerant execution: raising any
	// sample can only lengthen/merge qualifying runs (and lowering only
	// shorten/split them), so days_in_runs_above is monotone per
	// coordinate and days_in_runs_below is its mirror.
	mustRegisterInterval("days_in_runs_above", datacube.MonotoneInterval(daysAbove))
	mustRegisterInterval("days_in_runs_below", datacube.AntitoneInterval(daysBelow))
}

func mustRegister(name string, op datacube.RowOp) {
	if err := datacube.RegisterRowOp(name, op); err != nil {
		panic(err)
	}
}

func mustRegisterInterval(name string, f datacube.RowIvalFunc) {
	if err := datacube.RegisterRowOpInterval(name, f); err != nil {
		panic(err)
	}
}

func paramAt(params []float64, i int, def float64) float64 {
	if i < len(params) {
		return params[i]
	}
	return def
}

// Params configures the index definitions.
type Params struct {
	// ThresholdK is the anomaly threshold; the paper uses 5 K.
	ThresholdK float64
	// MinDays is the minimum qualifying duration; the paper uses 6.
	MinDays int
	// StepsPerDay is the sub-daily sampling of the input (4 for the
	// 6-hourly ESM output); daily extrema are computed over it.
	StepsPerDay int
	// DaysPerYear is the length of one year of input in days.
	DaysPerYear int
	// Eager forces the original operator-at-a-time execution of the
	// index pipelines. The default (false) compiles each chain into
	// fused per-fragment passes (datacube.Plan); both paths produce
	// byte-for-byte identical cubes and the eager one is kept for
	// cross-checking and benchmarking the fusion win.
	Eager bool
	// Tolerance declares the absolute error accepted on each index
	// value, enabling coarse-first execution over the input cube's
	// resolution pyramid (datacube.Plan.Tolerance). Zero (the default)
	// keeps the fused path byte-identical to exact execution; it is
	// ignored on the eager path, which is always exact.
	Tolerance float64
}

// Defaults fills zero fields with the paper's definitions.
func (p Params) Defaults() Params {
	if p.ThresholdK == 0 {
		p.ThresholdK = 5
	}
	if p.MinDays == 0 {
		p.MinDays = 6
	}
	if p.StepsPerDay == 0 {
		p.StepsPerDay = esm.StepsPerDay
	}
	if p.DaysPerYear == 0 {
		p.DaysPerYear = 365
	}
	return p
}

// Baseline holds the long-term climatological daily-extreme cubes,
// loaded once and shared across yearly pipelines.
type Baseline struct {
	// TMax is the climatological daily-maximum temperature per cell.
	TMax *datacube.Cube
	// TMin is the climatological daily-minimum temperature per cell.
	TMin *datacube.Cube
	// Grid is the spatial layout of the rows.
	Grid grid.Grid
	// DaysPerYear is the implicit length of the baseline cubes.
	DaysPerYear int
}

// BuildBaseline materializes the climatology baseline from the
// simulator's known long-term means (the stand-in for "historical
// averages computed over a 20-year period"). Each cube has one row per
// grid cell and one value per day of year.
func BuildBaseline(e *datacube.Engine, g grid.Grid, daysPerYear int) (*Baseline, error) {
	mkdims := func() []datacube.Dimension {
		return []datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}}
	}
	tmax, err := e.NewCubeFromFunc("TMAX_CLIM", mkdims(),
		datacube.Dimension{Name: "dayofyear", Size: daysPerYear},
		func(row, day int) float32 {
			i, j := g.RowCol(row)
			return float32(esm.Climatology(g, i, j, day, daysPerYear) + maxDiurnal())
		})
	if err != nil {
		return nil, err
	}
	tmin, err := e.NewCubeFromFunc("TMIN_CLIM", mkdims(),
		datacube.Dimension{Name: "dayofyear", Size: daysPerYear},
		func(row, day int) float32 {
			i, j := g.RowCol(row)
			return float32(esm.Climatology(g, i, j, day, daysPerYear) + minDiurnal())
		})
	if err != nil {
		return nil, err
	}
	tmax.SetMeta("role", "baseline")
	tmin.SetMeta("role", "baseline")
	return &Baseline{TMax: tmax, TMin: tmin, Grid: g, DaysPerYear: daysPerYear}, nil
}

func maxDiurnal() float64 {
	m := -1e9
	for s := 0; s < esm.StepsPerDay; s++ {
		if v := esm.DiurnalAnomaly(s); v > m {
			m = v
		}
	}
	return m
}

func minDiurnal() float64 {
	m := 1e9
	for s := 0; s < esm.StepsPerDay; s++ {
		if v := esm.DiurnalAnomaly(s); v < m {
			m = v
		}
	}
	return m
}

// Result bundles the three index cubes of one pipeline run. Each cube
// has one row per grid cell and implicit length 1.
type Result struct {
	// Duration is the longest qualifying wave length in days (0 when no
	// wave occurred).
	Duration *datacube.Cube
	// Number is the count of qualifying waves.
	Number *datacube.Cube
	// Frequency is the fraction of the year spent in qualifying waves.
	Frequency *datacube.Cube
}

// HeatWavesFromCube runs the heat-wave pipeline on an already-imported
// temperature cube (rows = cells, implicit = StepsPerDay×DaysPerYear
// sub-daily samples), reusing the shared baseline.
func HeatWavesFromCube(temp *datacube.Cube, b *Baseline, p Params) (*Result, error) {
	p = p.Defaults()
	return wavePipeline(temp, b.TMax, p, true)
}

// ColdWavesFromCube runs the cold-spell pipeline (daily minima below
// baseline − threshold).
func ColdWavesFromCube(temp *datacube.Cube, b *Baseline, p Params) (*Result, error) {
	p = p.Defaults()
	return wavePipeline(temp, b.TMin, p, false)
}

// wavePipeline is the shared operator chain of the paper's Listing 1:
// daily extremum → anomaly vs baseline → duration / count / frequency
// reductions, all fragment-parallel on the datacube engine. By default
// the chain runs as ONE fused multi-output pass (the shared
// daily-extremum/anomaly prefix is computed per row into scratch and
// the three index reductions branch off it); p.Eager selects the
// original operator-at-a-time execution.
func wavePipeline(temp *datacube.Cube, baseline *datacube.Cube, p Params, hot bool) (*Result, error) {
	if temp.ImplicitLen() != p.StepsPerDay*p.DaysPerYear {
		return nil, fmt.Errorf("indices: input has %d samples, want %d days × %d steps",
			temp.ImplicitLen(), p.DaysPerYear, p.StepsPerDay)
	}
	if baseline.ImplicitLen() != p.DaysPerYear {
		return nil, fmt.Errorf("indices: baseline has %d days, want %d", baseline.ImplicitLen(), p.DaysPerYear)
	}
	if temp.Rows() != baseline.Rows() {
		return nil, fmt.Errorf("indices: input rows %d != baseline rows %d", temp.Rows(), baseline.Rows())
	}
	if p.Eager {
		return wavePipelineEager(temp, baseline, p, hot)
	}
	return wavePipelineFused(temp, baseline, p, hot)
}

// waveOps resolves the direction-dependent operator names.
func waveOps(hot bool, p Params) (extremum, runOp, countOp, daysOp string, th float64) {
	if hot {
		return "max", "longest_run_above", "count_runs_above", "days_in_runs_above", p.ThresholdK
	}
	return "min", "longest_run_below", "count_runs_below", "days_in_runs_below", -p.ThresholdK
}

// wavePipelineFused runs the whole Listing-1 chain as one fused pass:
// daily/anomaly intermediates never materialize as cubes.
func wavePipelineFused(temp *datacube.Cube, baseline *datacube.Cube, p Params, hot bool) (*Result, error) {
	op, runOp, countOp, daysOp, th := waveOps(hot, p)
	outs, err := temp.Lazy().
		ReduceGroup(op, p.StepsPerDay).
		Intercube(baseline, "sub").
		Tolerance(p.Tolerance).
		ExecuteBranches(
			datacube.Branch().Reduce(runOp, th).Apply(fmt.Sprintf("x>=%d ? x : 0", p.MinDays)),
			datacube.Branch().Reduce(countOp, th, float64(p.MinDays)),
			datacube.Branch().Reduce(daysOp, th, float64(p.MinDays)).Apply(fmt.Sprintf("x/%d", p.DaysPerYear)),
		)
	if err != nil {
		return nil, err
	}
	duration, number, frequency := outs[0], outs[1], outs[2]
	duration.SetMeta("index", indexName(hot, "duration"))
	number.SetMeta("index", indexName(hot, "number"))
	frequency.SetMeta("index", indexName(hot, "frequency"))
	return &Result{Duration: duration, Number: number, Frequency: frequency}, nil
}

// wavePipelineEager is the original operator-at-a-time chain, retained
// as the fused path's cross-check oracle.
func wavePipelineEager(temp *datacube.Cube, baseline *datacube.Cube, p Params, hot bool) (*Result, error) {
	// Daily extremum over the sub-daily steps (oph_reduce2).
	op := "max"
	if !hot {
		op = "min"
	}
	daily, err := temp.ReduceGroup(op, p.StepsPerDay)
	if err != nil {
		return nil, err
	}
	defer daily.Delete()

	// Anomaly against the (already resident) baseline.
	anom, err := daily.Intercube(baseline, "sub")
	if err != nil {
		return nil, err
	}
	defer anom.Delete()

	runOp, countOp, daysOp := "longest_run_above", "count_runs_above", "days_in_runs_above"
	th := p.ThresholdK
	if !hot {
		runOp, countOp, daysOp = "longest_run_below", "count_runs_below", "days_in_runs_below"
		th = -p.ThresholdK
	}

	// (i) longest duration, zeroed when below the minimum length.
	longest, err := anom.Reduce(runOp, th)
	if err != nil {
		return nil, err
	}
	duration, err := longest.Apply(fmt.Sprintf("x>=%d ? x : 0", p.MinDays))
	if err != nil {
		return nil, err
	}
	_ = longest.Delete()
	duration.SetMeta("index", indexName(hot, "duration"))

	// (ii) number of qualifying waves.
	number, err := anom.Reduce(countOp, th, float64(p.MinDays))
	if err != nil {
		return nil, err
	}
	number.SetMeta("index", indexName(hot, "number"))

	// (iii) frequency: qualifying wave days / year length.
	waveDays, err := anom.Reduce(daysOp, th, float64(p.MinDays))
	if err != nil {
		return nil, err
	}
	frequency, err := waveDays.Apply(fmt.Sprintf("x/%d", p.DaysPerYear))
	if err != nil {
		return nil, err
	}
	_ = waveDays.Delete()
	frequency.SetMeta("index", indexName(hot, "frequency"))

	return &Result{Duration: duration, Number: number, Frequency: frequency}, nil
}

func indexName(hot bool, kind string) string {
	if hot {
		return "heat_wave_" + kind
	}
	return "cold_wave_" + kind
}

// HeatWaves imports one year of daily ESM files (variable TREFHT) and
// runs the heat-wave pipeline.
func HeatWaves(e *datacube.Engine, files []string, b *Baseline, p Params) (*Result, error) {
	p = p.Defaults()
	temp, err := e.ImportFiles(files, "TREFHT", "time")
	if err != nil {
		return nil, err
	}
	defer temp.Delete()
	return HeatWavesFromCube(temp, b, p)
}

// ColdWaves imports one year of daily ESM files and runs the cold-spell
// pipeline.
func ColdWaves(e *datacube.Engine, files []string, b *Baseline, p Params) (*Result, error) {
	p = p.Defaults()
	temp, err := e.ImportFiles(files, "TREFHT", "time")
	if err != nil {
		return nil, err
	}
	defer temp.Delete()
	return ColdWavesFromCube(temp, b, p)
}

// CubeToField converts a per-cell index cube (implicit length 1, rows =
// NLat×NLon) into a renderable 2-D field.
func CubeToField(c *datacube.Cube, g grid.Grid) (*grid.Field, error) {
	if c.Rows() != g.Size() || c.ImplicitLen() != 1 {
		return nil, fmt.Errorf("indices: cube %dx%d does not match grid %dx%d",
			c.Rows(), c.ImplicitLen(), g.NLat, g.NLon)
	}
	f := grid.NewField(g)
	var buf [1]float32
	for r := 0; r < c.Rows(); r++ {
		if _, err := c.CopyRow(buf[:], r); err != nil {
			return nil, err
		}
		f.Data[r] = buf[0]
	}
	return f, nil
}

// Validate sanity-checks a result against hard invariants: durations
// within [0, daysPerYear], non-negative counts, frequencies in [0,1].
// It mirrors the workflow's step 5 ("the output of the analysis is then
// validated and stored on disk").
func Validate(r *Result, p Params) error {
	p = p.Defaults()
	checks := []struct {
		cube   *datacube.Cube
		lo, hi float64
		name   string
	}{
		{r.Duration, 0, float64(p.DaysPerYear), "duration"},
		{r.Number, 0, float64(p.DaysPerYear) / float64(p.MinDays), "number"},
		{r.Frequency, 0, 1, "frequency"},
	}
	var buf [1]float32
	for _, c := range checks {
		for rIdx := 0; rIdx < c.cube.Rows(); rIdx++ {
			if _, err := c.cube.CopyRow(buf[:], rIdx); err != nil {
				return err
			}
			v := float64(buf[0])
			if v < c.lo || v > c.hi {
				return fmt.Errorf("indices: %s[%d] = %v outside [%v,%v]", c.name, rIdx, v, c.lo, c.hi)
			}
		}
	}
	return nil
}
