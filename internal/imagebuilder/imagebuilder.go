// Package imagebuilder simulates the eFlows4HPC Container Image
// Creation service (Ejarque & Badia 2023; paper §4.1): it "automates
// the creation of the container images for workflows, including the
// code as well as all the required software compiled for the target HPC
// platform". Builds resolve a package dependency closure against a
// small registry, produce a content-addressed image manifest, and are
// cached so identical requests return the existing image.
package imagebuilder

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Platform describes the target machine the image is compiled for.
type Platform struct {
	// Arch is the CPU architecture, e.g. "x86_64" or "ppc64le".
	Arch string
	// MPI names the machine's MPI flavor, e.g. "openmpi4".
	MPI string
	// Accelerator is "" for CPU-only targets, or e.g. "cuda11".
	Accelerator string
}

func (p Platform) key() string {
	return p.Arch + "/" + p.MPI + "/" + p.Accelerator
}

// Package is one installable software component with dependencies.
type Package struct {
	Name string
	Deps []string
}

// Registry resolves package names to definitions (a spack-like index).
type Registry struct {
	mu   sync.RWMutex
	pkgs map[string]Package
}

// NewRegistry returns a registry pre-populated with the climate
// workflow's software stack.
func NewRegistry() *Registry {
	r := &Registry{pkgs: make(map[string]Package)}
	for _, p := range []Package{
		{Name: "libc"},
		{Name: "mpi", Deps: []string{"libc"}},
		{Name: "netcdf", Deps: []string{"libc"}},
		{Name: "python", Deps: []string{"libc"}},
		{Name: "numpy", Deps: []string{"python"}},
		{Name: "pycompss", Deps: []string{"python", "mpi"}},
		{Name: "cmcc-cm3-sim", Deps: []string{"mpi", "netcdf"}},
		{Name: "ophidia-like", Deps: []string{"netcdf", "python"}},
		{Name: "pyophidia", Deps: []string{"ophidia-like", "python"}},
		{Name: "tensors", Deps: []string{"numpy"}},
		{Name: "cnn-inference", Deps: []string{"tensors"}},
		{Name: "keras-like", Deps: []string{"tensors"}},
		{Name: "maps", Deps: []string{"python"}},
	} {
		r.pkgs[p.Name] = p
	}
	return r
}

// Add registers an extra package definition (overwrites existing).
func (r *Registry) Add(p Package) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pkgs[p.Name] = p
}

// Resolve returns the dependency closure of the requested packages in
// deterministic install order (dependencies before dependents).
func (r *Registry) Resolve(names []string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("imagebuilder: dependency cycle at %q", n)
		case 2:
			return nil
		}
		p, ok := r.pkgs[n]
		if !ok {
			return fmt.Errorf("imagebuilder: unknown package %q", n)
		}
		state[n] = 1
		deps := append([]string(nil), p.Deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[n] = 2
		order = append(order, n)
		return nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Image is a built container image manifest.
type Image struct {
	// Tag is the human-readable name:platform tag.
	Tag string
	// Digest is the content hash of the manifest (identity).
	Digest string
	// Platform is the compile target.
	Platform Platform
	// Layers lists installed packages in install order.
	Layers []string
	// BuildLog records the simulated build steps.
	BuildLog []string
	// Cached marks manifests served from cache rather than rebuilt.
	Cached bool
}

// Request asks for an image containing the packages, compiled for the
// platform.
type Request struct {
	Name     string
	Packages []string
	Platform Platform
}

// Builder is the image creation service.
type Builder struct {
	registry *Registry
	mu       sync.Mutex
	cache    map[string]*Image
	builds   int
}

// NewBuilder returns a builder over the given registry (nil uses the
// default registry).
func NewBuilder(reg *Registry) *Builder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Builder{registry: reg, cache: make(map[string]*Image)}
}

// Builds reports how many non-cached builds have run.
func (b *Builder) Builds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.builds
}

// Build resolves, "compiles" and packages the request, returning the
// image manifest. Identical requests hit the cache.
func (b *Builder) Build(req Request) (*Image, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("imagebuilder: request needs a name")
	}
	if req.Platform.Arch == "" {
		return nil, fmt.Errorf("imagebuilder: request needs a target architecture")
	}
	layers, err := b.registry.Resolve(req.Packages)
	if err != nil {
		return nil, err
	}
	key := req.Name + "|" + req.Platform.key() + "|" + strings.Join(layers, ",")

	b.mu.Lock()
	if img, ok := b.cache[key]; ok {
		b.mu.Unlock()
		out := *img
		out.Cached = true
		return &out, nil
	}
	b.mu.Unlock()

	var log []string
	log = append(log, fmt.Sprintf("FROM scratch (platform %s)", req.Platform.key()))
	for _, l := range layers {
		log = append(log, fmt.Sprintf("COMPILE %s --arch=%s --mpi=%s", l, req.Platform.Arch, req.Platform.MPI))
	}
	log = append(log, fmt.Sprintf("PACKAGE %d layers", len(layers)))
	sum := sha256.Sum256([]byte(key))
	img := &Image{
		Tag:      fmt.Sprintf("%s:%s", req.Name, req.Platform.Arch),
		Digest:   "sha256:" + hex.EncodeToString(sum[:]),
		Platform: req.Platform,
		Layers:   layers,
		BuildLog: log,
	}
	b.mu.Lock()
	// first writer wins; concurrent identical builds converge
	if prior, ok := b.cache[key]; ok {
		b.mu.Unlock()
		out := *prior
		out.Cached = true
		return &out, nil
	}
	b.cache[key] = img
	b.builds++
	b.mu.Unlock()
	return img, nil
}
