package execstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// The store journal is a JSON-lines file in the execq idiom: one record
// per line, either a "submit" (full task description) or a terminal
// "state" transition. Leases are deliberately NOT journaled — they are
// volatile coordination state, and recording every acquire/renew would
// make the journal a write amplifier. On replay, every submitted task
// without a terminal record is pending again: a task that was LEASED at
// crash time simply re-runs, and the epoch fence (resumed past the
// highest journaled epoch) guarantees any straggler completion from
// before the crash cannot be accepted twice.
type journalRecord struct {
	Op       string          `json:"op"` // "submit" | "state"
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant,omitempty"`
	Kind     string          `json:"kind,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Retries  int             `json:"retries,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	State    State           `json:"state,omitempty"`
	Err      string          `json:"error,omitempty"`
	Epoch    uint64          `json:"epoch,omitempty"`
	Time     time.Time       `json:"t"`
}

func submitRecord(t Task, at time.Time) journalRecord {
	return journalRecord{
		Op:       "submit",
		ID:       t.ID,
		Tenant:   t.Tenant,
		Kind:     t.Kind,
		Priority: t.Priority,
		Retries:  t.Retries,
		Payload:  t.Payload,
		Time:     at,
	}
}

func stateRecord(id string, s State, errMsg string, epoch uint64, at time.Time) journalRecord {
	return journalRecord{Op: "state", ID: id, State: s, Err: errMsg, Epoch: epoch, Time: at}
}

// journal appends records to an open file. Append errors are recorded,
// not returned: losing journal durability must not fail live traffic.
type journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	bytes   int64
	lastErr error
}

func (j *journal) append(rec journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(rec)
}

func (j *journal) appendLocked(rec journalRecord) {
	if j.f == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.lastErr = err
		return
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.lastErr = err
		return
	}
	j.bytes += int64(len(line))
}

func (j *journal) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// compact atomically rewrites the journal down to the given live
// records via temp file + rename, then reopens for appends; a crash at
// any point leaves either the old complete journal or the new one.
func (j *journal) compact(live []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.lastErr
	}
	tmp := j.path + ".compact.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		j.lastErr = err
		return err
	}
	var written int64
	for _, rec := range live {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			j.lastErr = err
			return err
		}
		line = append(line, '\n')
		if _, err := f.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			j.lastErr = err
			return err
		}
		written += int64(len(line))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		j.lastErr = err
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		j.lastErr = err
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.lastErr = err
		return err
	}
	old.Close()
	j.f = nf
	j.bytes = written
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.lastErr
	}
	err := j.f.Close()
	j.f = nil
	if j.lastErr != nil {
		return j.lastErr
	}
	return err
}

// replayJournal reads path and returns tasks without a terminal record
// (in submit order), the highest epoch mentioned by any terminal record
// (the fence resumes past it), and how many corrupt lines were skipped.
// A missing file means no pending work. Torn or garbled lines are
// skipped and counted, never fatal — one bad line must not cost the
// whole backlog.
func replayJournal(path string) ([]Task, uint64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("execstore: open journal: %w", err)
	}
	defer f.Close()

	type entry struct {
		task Task
		last State
	}
	byID := make(map[string]*entry)
	var order []string
	var maxEpoch uint64
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			continue
		}
		switch rec.Op {
		case "submit":
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			byID[rec.ID] = &entry{
				task: Task{
					ID:       rec.ID,
					Tenant:   rec.Tenant,
					Kind:     rec.Kind,
					Priority: rec.Priority,
					Retries:  rec.Retries,
					Payload:  rec.Payload,
				},
				last: StatePending,
			}
			order = append(order, rec.ID)
		case "state":
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
			if e, ok := byID[rec.ID]; ok {
				e.last = rec.State
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, maxEpoch, skipped, fmt.Errorf("execstore: read journal: %w", err)
	}
	var pending []Task
	for _, id := range order {
		if e := byID[id]; !e.last.Terminal() {
			pending = append(pending, e.task)
		}
	}
	return pending, maxEpoch, skipped, nil
}

// resetJournal truncates path down to the pending submits (startup
// compaction) and returns the open journal for subsequent appends.
func resetJournal(path string, pending []Task) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("execstore: create journal: %w", err)
	}
	j := &journal{path: path, f: f}
	now := time.Now()
	for _, t := range pending {
		j.append(submitRecord(t, now))
	}
	if j.lastErr != nil {
		f.Close()
		return nil, fmt.Errorf("execstore: compact journal: %w", j.lastErr)
	}
	return j, nil
}

// sortViews orders task snapshots by submission time, then ID.
func sortViews(vs []TaskView) {
	sort.Slice(vs, func(i, j int) bool {
		if !vs[i].Submitted.Equal(vs[j].Submitted) {
			return vs[i].Submitted.Before(vs[j].Submitted)
		}
		return vs[i].ID < vs[j].ID
	})
}

// sortTasksBySeq orders live tasks by admission sequence for stable
// compaction output.
func sortTasksBySeq(ts []*task) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].seq < ts[j].seq })
}
