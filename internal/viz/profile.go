package viz

import (
	"fmt"
	"math"
	"strings"
)

// ProfilePoint is one labelled value of a 1-D profile (e.g. a zonal
// mean per latitude).
type ProfilePoint struct {
	Label string
	Value float64
}

// ASCIIProfile renders a horizontal bar chart of a 1-D profile, value
// axis auto-scaled, one row per point — the quick-look for zonal-mean
// diagnostics. width bounds the bar length in characters.
func ASCIIProfile(points []ProfilePoint, width int) string {
	if len(points) == 0 {
		return "(no data)\n"
	}
	if width < 10 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, p := range points {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
		if len(p.Label) > labelW {
			labelW = len(p.Label)
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  value\n", labelW, "", width, fmt.Sprintf("[%.4g .. %.4g]", lo, hi))
	for _, p := range points {
		n := int(math.Round((p.Value - lo) / span * float64(width)))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %.4g\n", labelW, p.Label, width, strings.Repeat("▆", n), p.Value)
	}
	return b.String()
}
