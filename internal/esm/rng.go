package esm

import "math"

// prng is a small, fully serializable pseudo-random generator
// (xoshiro256** with splitmix64 seeding, Box–Muller normals). The
// standard library generator hides its state, which would make model
// restart files impossible; this one's exported fields gob-encode, so
// a saved simulation resumes bit-exactly.
type prng struct {
	S     [4]uint64
	Cache float64 // buffered second Box–Muller variate
	Has   bool
}

// newPRNG seeds the generator deterministically.
func newPRNG(seed int64) *prng {
	p := &prng{}
	x := uint64(seed)
	for i := range p.S {
		// splitmix64
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.S[i] = z ^ (z >> 31)
	}
	return p
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (p *prng) Uint64() uint64 {
	s := &p.S
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (p *prng) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). n must be positive.
func (p *prng) Intn(n int) int {
	if n <= 0 {
		panic("esm: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (p *prng) NormFloat64() float64 {
	if p.Has {
		p.Has = false
		return p.Cache
	}
	var u float64
	for u == 0 {
		u = p.Float64()
	}
	v := p.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	p.Cache = r * math.Sin(2*math.Pi*v)
	p.Has = true
	return r * math.Cos(2*math.Pi*v)
}
