package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/esm"
	"repro/internal/grid"
)

// Channels are the climate variables stacked as CNN input planes, the
// paper's "set of input climate variables simulated by ESM (i.e.,
// temperature, sea pressure level, wind speed, vorticity)".
var Channels = []string{"PSL", "WSPD", "VORT850", "T500"}

// Localizer is the pre-trained TC patch localizer plus its
// preprocessing contract (patch size and channel stack).
type Localizer struct {
	Net    *Network
	PatchH int
	PatchW int
}

// NewLocalizer builds an untrained localizer for the given patch size.
func NewLocalizer(patchH, patchW int, seed int64) (*Localizer, error) {
	net, err := NewCNN(len(Channels), patchH, patchW, seed)
	if err != nil {
		return nil, err
	}
	return &Localizer{Net: net, PatchH: patchH, PatchW: patchW}, nil
}

// Prediction is the CNN head output for one patch.
type Prediction struct {
	// Presence is the TC probability in (0,1).
	Presence float64
	// Row, Col are the predicted center coordinates as fractions of the
	// patch extent, valid when Presence is high.
	Row, Col float64
}

// Predict runs one preprocessed patch tensor through the network.
func (l *Localizer) Predict(x *Tensor) Prediction {
	out := l.Net.Forward(x)
	return Prediction{
		Presence: Sigmoid(out.Data[0]),
		Row:      clamp01(out.Data[1]),
		Col:      clamp01(out.Data[2]),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Sample is one labelled training patch.
type Sample struct {
	X     *Tensor
	HasTC bool
	// Row, Col are the true center fractions (only meaningful when
	// HasTC).
	Row, Col float64
}

// stackPatches builds the preprocessed channel patches of one
// instantaneous field set: each channel field is standardized over the
// full domain (feature scaling), then tiled into non-overlapping
// patches (§5.4 pre-processing).
func stackPatches(fields map[string]*grid.Field, patchH, patchW int) ([][]grid.Patch, error) {
	chPatches := make([][]grid.Patch, len(Channels))
	for ci, name := range Channels {
		f, ok := fields[name]
		if !ok {
			return nil, fmt.Errorf("ml: missing channel field %q", name)
		}
		scaled := &grid.Field{Grid: f.Grid, Data: append([]float32(nil), f.Data...)}
		scaled.Standardize()
		ps, err := scaled.Tile(patchH, patchW)
		if err != nil {
			return nil, err
		}
		chPatches[ci] = ps
	}
	return chPatches, nil
}

// patchTensor assembles the pi-th patch of every channel into a CNN
// input tensor.
func patchTensor(chPatches [][]grid.Patch, pi, patchH, patchW int) *Tensor {
	x := NewTensor(len(Channels), patchH, patchW)
	for ci := range chPatches {
		p := chPatches[ci][pi]
		for r := 0; r < patchH; r++ {
			for c := 0; c < patchW; c++ {
				x.Set3(ci, r, c, float64(p.Data[p.Index(r, c)]))
			}
		}
	}
	return x
}

// ChannelFields extracts and derives the localizer input fields from a
// model step (WSPD is derived from the 850 hPa wind components).
func ChannelFields(day *esm.DayOutput, step int) (map[string]*grid.Field, error) {
	out := make(map[string]*grid.Field, len(Channels))
	for _, name := range []string{"PSL", "VORT850", "T500"} {
		f, err := day.Field(step, name)
		if err != nil {
			return nil, err
		}
		out[name] = f
	}
	u, err := day.Field(step, "U850")
	if err != nil {
		return nil, err
	}
	v, err := day.Field(step, "V850")
	if err != nil {
		return nil, err
	}
	w := grid.NewField(u.Grid)
	for i := range w.Data {
		w.Data[i] = float32(math.Hypot(float64(u.Data[i]), float64(v.Data[i])))
	}
	out["WSPD"] = w
	return out, nil
}

// BuildSamples labels every patch of one model step against the seeded
// ground truth: positive when a storm center falls inside the patch.
func BuildSamples(day *esm.DayOutput, step int, storms []esm.Cyclone, patchH, patchW int) ([]Sample, error) {
	fields, err := ChannelFields(day, step)
	if err != nil {
		return nil, err
	}
	chPatches, err := stackPatches(fields, patchH, patchW)
	if err != nil {
		return nil, err
	}
	g := day.Grid
	// active storm centers at this instant
	type center struct{ row, col int }
	var centers []center
	for i := range storms {
		if storms[i].Year != day.Year {
			continue
		}
		if p, ok := storms[i].Active(day.DayOfYear, step); ok {
			ci, cj := g.CellOf(p.Lat, p.Lon)
			centers = append(centers, center{ci, cj})
		}
	}
	var out []Sample
	for pi := range chPatches[0] {
		p := chPatches[0][pi]
		s := Sample{X: patchTensor(chPatches, pi, patchH, patchW)}
		for _, c := range centers {
			if c.row >= p.Row0 && c.row < p.Row0+patchH && c.col >= p.Col0 && c.col < p.Col0+patchW {
				s.HasTC = true
				s.Row = (float64(c.row-p.Row0) + 0.5) / float64(patchH)
				s.Col = (float64(c.col-p.Col0) + 0.5) / float64(patchW)
				break
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// TrainConfig controls localizer training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// CoordWeight scales the localization loss term; zero means 2.
	CoordWeight float64
	// Balance duplicates positive samples to counter class imbalance.
	Balance bool
}

// Train fits the localizer on samples with BCE (presence) + masked MSE
// (center coordinates) and returns the mean loss per epoch.
func (l *Localizer) Train(samples []Sample, cfg TrainConfig) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("ml: no training samples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.CoordWeight == 0 {
		cfg.CoordWeight = 2
	}
	train := samples
	if cfg.Balance {
		train = balance(samples)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	opt := NewAdam(l.Net, cfg.LR)
	losses := make([]float64, 0, cfg.Epochs)
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		inBatch := 0
		for _, si := range idx {
			s := train[si]
			out := l.Net.Forward(s.X)
			logit, pr, pc := out.Data[0], out.Data[1], out.Data[2]
			y := 0.0
			if s.HasTC {
				y = 1
			}
			p := Sigmoid(logit)
			// BCE + masked coordinate MSE
			loss := -(y*math.Log(p+1e-12) + (1-y)*math.Log(1-p+1e-12))
			grad := NewTensor(3)
			grad.Data[0] = p - y
			if s.HasTC {
				dr, dc := pr-s.Row, pc-s.Col
				loss += cfg.CoordWeight * (dr*dr + dc*dc)
				grad.Data[1] = 2 * cfg.CoordWeight * dr
				grad.Data[2] = 2 * cfg.CoordWeight * dc
			}
			epochLoss += loss
			l.Net.Backward(grad)
			inBatch++
			if inBatch == cfg.BatchSize {
				opt.Step(inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(inBatch)
		}
		losses = append(losses, epochLoss/float64(len(train)))
	}
	return losses, nil
}

// balance oversamples positives to roughly match negatives.
func balance(samples []Sample) []Sample {
	var pos, neg []Sample
	for _, s := range samples {
		if s.HasTC {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) <= len(pos) {
		return samples
	}
	out := append([]Sample(nil), samples...)
	for len(pos) > 0 && len(out) < len(neg)*2 {
		out = append(out, pos...)
	}
	return out
}

// SamplesFromSimulations generates labelled patches from several
// independent simulated years (one model per seed), giving the training
// set the storm diversity a single run cannot provide — the stand-in
// for the paper's CNN "previously trained on historical data".
func SamplesFromSimulations(cfg esm.Config, seeds []int64, patchH, patchW int) ([]Sample, error) {
	var out []Sample
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		m := esm.NewModel(c)
		gt := m.GroundTruth()
		for {
			d := m.StepDay()
			if d == nil {
				break
			}
			for step := 0; step < esm.StepsPerDay; step += 2 {
				s, err := BuildSamples(d, step, gt.Cyclones, patchH, patchW)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
		}
	}
	return out, nil
}

// Detection is one geo-referenced TC localization (workflow step
// "geo-referencing predicted TC center coordinates onto a global map").
type Detection struct {
	Lat, Lon float64
	Score    float64
}

// DetectStep runs the localizer over every patch of one model step and
// returns detections above the probability threshold, sorted by
// descending score.
func (l *Localizer) DetectStep(day *esm.DayOutput, step int, threshold float64) ([]Detection, error) {
	fields, err := ChannelFields(day, step)
	if err != nil {
		return nil, err
	}
	return l.DetectFields(fields, day.Grid, threshold)
}

// DetectFields is DetectStep on pre-extracted channel fields.
func (l *Localizer) DetectFields(fields map[string]*grid.Field, g grid.Grid, threshold float64) ([]Detection, error) {
	chPatches, err := stackPatches(fields, l.PatchH, l.PatchW)
	if err != nil {
		return nil, err
	}
	var out []Detection
	for pi := range chPatches[0] {
		p := chPatches[0][pi]
		pred := l.Predict(patchTensor(chPatches, pi, l.PatchH, l.PatchW))
		if pred.Presence < threshold {
			continue
		}
		row := float64(p.Row0) + pred.Row*float64(l.PatchH)
		col := float64(p.Col0) + pred.Col*float64(l.PatchW)
		out = append(out, Detection{
			Lat:   g.Lat(int(row)),
			Lon:   g.Lon(int(col) % g.NLon),
			Score: pred.Presence,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}
