package tctrack

import (
	"reflect"
	"testing"

	"repro/internal/datacube"
)

func prescreenEngine(t *testing.T) *datacube.Engine {
	t.Helper()
	e := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	t.Cleanup(func() { e.Close() })
	return e
}

// trackPoints strips IDs so runs that open tracks in the same order but
// number them differently still compare equal.
func trackPoints(tracks []*Track) [][]Detection {
	out := make([][]Detection, len(tracks))
	for i, tr := range tracks {
		out[i] = tr.Points
	}
	return out
}

func TestPrescreenMatchesRunModel(t *testing.T) {
	want, err := RunModel(stormModel(23, 2, 25), DefaultCriteria())
	if err != nil {
		t.Fatal(err)
	}
	for _, tol := range []float64{0, 50} {
		e := prescreenEngine(t)
		got, err := Prescreen(e, stormModel(23, 2, 25), Params{Criteria: DefaultCriteria(), Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trackPoints(got.Tracks), trackPoints(want)) {
			t.Fatalf("tol=%g: prescreen tracks diverge from full scan:\ngot  %d tracks\nwant %d tracks",
				tol, len(got.Tracks), len(want))
		}
		if got.StepsTotal != 25*4 {
			t.Fatalf("StepsTotal = %d", got.StepsTotal)
		}
		if got.StepsScanned >= got.StepsTotal {
			t.Fatalf("tol=%g: prescreen scanned every step (%d/%d), pruned nothing",
				tol, got.StepsScanned, got.StepsTotal)
		}
		t.Logf("tol=%g: scanned %d/%d steps, %d tracks", tol, got.StepsScanned, got.StepsTotal, len(got.Tracks))
	}
}

func TestPrescreenStormFreeScansNothing(t *testing.T) {
	e := prescreenEngine(t)
	got, err := Prescreen(e, stormModel(23, 0, 25), Params{Criteria: DefaultCriteria()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tracks) != 0 {
		t.Fatalf("storm-free run produced %d tracks", len(got.Tracks))
	}
	// no stripe ever shows a sustained cyclone-grade contrast, so most
	// steps must be pruned without the stencil scan
	if got.StepsScanned > got.StepsTotal/2 {
		t.Fatalf("storm-free run scanned %d/%d steps", got.StepsScanned, got.StepsTotal)
	}
}
