package execstore

import (
	"fmt"
	"testing"
	"time"
)

// drainOrder leases tasks one at a time (completing each immediately)
// and returns the tenant dispatch sequence.
func drainOrder(t *testing.T, s *Store, n int) []string {
	t.Helper()
	order := make([]string, 0, n)
	for len(order) < n {
		ls := s.TryAcquire("rep", 1)
		if len(ls) == 0 {
			break
		}
		order = append(order, ls[0].Task.Tenant)
		if err := s.Complete(ls[0], nil); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	return order
}

func TestWeightedSharesWithinTenPercent(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{MaxPending: 1 << 14, LeaseTTL: time.Minute, nowFn: clk.now})
	weights := map[string]float64{"heavy": 3, "mid": 2, "light": 1}
	const perTenant = 800
	for tenant, w := range weights {
		s.SetWeight(tenant, w)
		for i := 0; i < perTenant; i++ {
			mustSubmit(t, s, Task{ID: fmt.Sprintf("%s-%d", tenant, i), Tenant: tenant, Kind: "k"})
		}
	}

	// Measure only while every tenant is still backlogged: 800 each,
	// window 1200, max any tenant can take is 1200/2 < 800.
	const window = 1200
	order := drainOrder(t, s, window)
	if len(order) != window {
		t.Fatalf("drained %d, want %d", len(order), window)
	}
	counts := map[string]int{}
	for _, tenant := range order {
		counts[tenant]++
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for tenant, w := range weights {
		expect := float64(window) * w / wsum
		got := float64(counts[tenant])
		if got < 0.9*expect || got > 1.1*expect {
			t.Errorf("tenant %s: %v dispatches, want %.0f ±10%%", tenant, counts[tenant], expect)
		}
	}
}

func TestPriorityIsTenantLocalOnly(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{MaxPending: 1 << 10, LeaseTTL: time.Minute, nowFn: clk.now})
	// Tenant "shouter" floods high-priority work; tenant "quiet" has one
	// normal task. Under FIFO-within-priority quiet would wait behind
	// all 200; under fair share it is served within the first round.
	for i := 0; i < 200; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("loud-%d", i), Tenant: "shouter", Priority: 100, Kind: "k"})
	}
	mustSubmit(t, s, Task{ID: "quiet-0", Tenant: "quiet", Priority: 0, Kind: "k"})

	order := drainOrder(t, s, 10)
	pos := -1
	for i, tenant := range order {
		if tenant == "quiet" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("quiet tenant served at position %d of %v; fair share should serve it within the first round", pos, order)
	}

	// Within one tenant, priority still orders the queue.
	mustSubmit(t, s, Task{ID: "low", Tenant: "solo", Priority: 1, Kind: "k"})
	mustSubmit(t, s, Task{ID: "high", Tenant: "solo", Priority: 9, Kind: "k"})
	// Drain the shouter backlog plus solo's two tasks, tracking solo's
	// internal order.
	var soloOrder []string
	for {
		ls := s.TryAcquire("rep", 1)
		if len(ls) == 0 {
			break
		}
		if ls[0].Task.Tenant == "solo" {
			soloOrder = append(soloOrder, ls[0].TaskID)
		}
		if err := s.Complete(ls[0], nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(soloOrder) != 2 || soloOrder[0] != "high" || soloOrder[1] != "low" {
		t.Fatalf("solo order = %v, want [high low]", soloOrder)
	}
}

func TestNoStarvationUnderThousandTenantSkew(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{MaxPending: 1 << 14, LeaseTTL: time.Minute, nowFn: clk.now})

	// Skewed load: one aggressive tenant floods 5000 tasks; 999 small
	// tenants submit 3 each. The aggressor also gets a higher weight —
	// it may go faster, but it must not starve anyone.
	const smallTenants = 999
	const smallTasks = 3
	const heavyTasks = 5000
	s.SetWeight("aggressor", 5)
	for i := 0; i < heavyTasks; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("agg-%d", i), Tenant: "aggressor", Kind: "k"})
	}
	for i := 0; i < smallTenants; i++ {
		tenant := fmt.Sprintf("small-%03d", i)
		for j := 0; j < smallTasks; j++ {
			mustSubmit(t, s, Task{ID: fmt.Sprintf("%s-%d", tenant, j), Tenant: tenant, Kind: "k"})
		}
	}

	bound := s.StarvationBound("small-000")
	if bound <= 0 {
		t.Fatalf("StarvationBound = %d", bound)
	}

	total := heavyTasks + smallTenants*smallTasks
	order := drainOrder(t, s, total)
	if len(order) != total {
		t.Fatalf("drained %d, want %d", len(order), total)
	}

	// For every tenant, the gap (in other-tenant dispatches) between
	// consecutive services while it still had pending work must stay
	// under the configured DRR bound.
	remaining := map[string]int{"aggressor": heavyTasks}
	lastServed := map[string]int{}
	for i := 0; i < smallTenants; i++ {
		remaining[fmt.Sprintf("small-%03d", i)] = smallTasks
	}
	for tenant := range remaining {
		lastServed[tenant] = -1
	}
	worst := 0
	for i, tenant := range order {
		gap := i - lastServed[tenant] - 1
		if gap > worst {
			worst = gap
		}
		if gap > bound {
			t.Fatalf("tenant %s waited %d dispatches (bound %d) at position %d", tenant, gap, bound, i)
		}
		lastServed[tenant] = i
		remaining[tenant]--
		if remaining[tenant] == 0 {
			// Fully served: no longer subject to the bound.
			lastServed[tenant] = total + bound
		}
	}
	// The bound must also be meaningfully exercised, not vacuous: with
	// ~1000 active tenants a full DRR round serves everyone, so no gap
	// should exceed a small multiple of the active-tenant count either.
	if empirical := 3 * (smallTenants + 1) * 5; worst > empirical {
		t.Fatalf("worst observed gap %d exceeds empirical round bound %d", worst, empirical)
	}
	t.Logf("worst gap %d dispatches; configured DRR bound %d", worst, bound)
}

func TestIdleTenantCannotBankDeficit(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{MaxPending: 1 << 12, LeaseTTL: time.Minute, nowFn: clk.now})
	// "sleeper" is idle while "worker" churns 500 tasks; when sleeper
	// wakes it must not get a catch-up burst beyond one quantum.
	for i := 0; i < 500; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("w-%d", i), Tenant: "worker", Kind: "k"})
	}
	_ = drainOrder(t, s, 400)
	for i := 0; i < 50; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("s-%d", i), Tenant: "sleeper", Kind: "k"})
	}
	order := drainOrder(t, s, 20)
	sleeperBurst := 0
	for _, tenant := range order {
		if tenant != "sleeper" {
			break
		}
		sleeperBurst++
	}
	// Equal weights, equal costs: the first consecutive sleeper run must
	// be at most ~one quantum's worth (cost 1 → 1 task, +1 slack).
	if sleeperBurst > 2 {
		t.Fatalf("woken tenant served %d consecutive tasks; idle time banked into deficit", sleeperBurst)
	}
}
