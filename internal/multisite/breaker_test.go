package multisite

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

func twoSites(t *testing.T) (*Federation, *Site, *Site) {
	t.Helper()
	f := NewFederation()
	a, err := f.AddSite("hpc-a", KindHPC, filepath.Join(t.TempDir(), "a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddSite("cloud-b", KindCloud, filepath.Join(t.TempDir(), "b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

func seedFile(t *testing.T, s *Site, name, content string) string {
	t.Helper()
	p := filepath.Join(s.Dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransferRetriesTransientFault(t *testing.T) {
	f, a, b := twoSites(t)
	p := seedFile(t, a, "y1950.nc", "fields")
	inj := chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Attempt: 0, Kind: chaos.Transient})
	f.SetInjector(inj)
	var slept []time.Duration
	f.sleepFn = func(d time.Duration) { slept = append(slept, d) }

	out, err := f.Transfer("y1950", a, b, []string{p})
	if err != nil {
		t.Fatalf("transient transfer fault should be retried away: %v", err)
	}
	got, err := os.ReadFile(out[0])
	if err != nil || string(got) != "fields" {
		t.Fatalf("transferred file = %q, %v", got, err)
	}
	if len(slept) != 1 {
		t.Fatalf("expected one backoff sleep, got %v", slept)
	}
	if st := f.Stats(); st.Transfers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransferBackoffGrowsAndCaps(t *testing.T) {
	pol := TransferPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}.withDefaults()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i, w := range want {
		if got := transferBackoff(pol, i); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	f, a, b := twoSites(t)
	p := seedFile(t, a, "y1950.nc", "fields")

	// Every attempt fails permanently (no retries consumed), so each
	// Transfer is one breaker failure.
	inj := chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Kind: chaos.PermanentKind, Max: 2})
	f.SetInjector(inj)
	now := time.Unix(1_700_000_000, 0)
	f.nowFn = func() time.Time { return now }
	f.sleepFn = func(time.Duration) {}
	f.SetTransferPolicy(TransferPolicy{
		Retries: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	})

	for i := 0; i < 2; i++ {
		if _, err := f.Transfer("y1950", a, b, []string{p}); err == nil {
			t.Fatalf("transfer %d should fail", i)
		} else if errors.Is(err, ErrSiteUnavailable) {
			t.Fatalf("transfer %d rejected before threshold: %v", i, err)
		}
	}
	// Threshold reached: circuit open, typed fast failure.
	_, err := f.Transfer("y1950", a, b, []string{p})
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("open circuit should reject with ErrSiteUnavailable, got %v", err)
	}
	if inj.Injected() != 2 {
		t.Fatalf("open circuit still reached the transfer layer (%d injections)", inj.Injected())
	}

	// Cooldown elapses; the injector's Max=2 budget is spent, so the
	// probe succeeds and the circuit closes again.
	now = now.Add(11 * time.Second)
	out, err := f.Transfer("y1950", a, b, []string{p})
	if err != nil {
		t.Fatalf("probe after cooldown should succeed: %v", err)
	}
	if got, _ := os.ReadFile(out[0]); string(got) != "fields" {
		t.Fatalf("probe transferred %q", got)
	}
	// Healthy again: immediate next transfer is admitted.
	if _, err := f.Transfer("y1950-again", a, b, []string{p}); err != nil {
		t.Fatalf("closed circuit rejected a transfer: %v", err)
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe fires a herd of concurrent
// transfers at a breaker whose cooldown just expired. Exactly one may
// reach the (still-dead) site as the probe; the rest must be rejected
// with ErrSiteUnavailable — first because the probe is in flight, then
// because its failure restarted the cooldown.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	f, a, b := twoSites(t)
	p := seedFile(t, a, "y.nc", "x")
	// Budget of 2 injections: the opening failure and the failed probe.
	inj := chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Kind: chaos.PermanentKind, Max: 2})
	f.SetInjector(inj)
	now := time.Unix(1_700_000_000, 0)
	var nowMu sync.Mutex
	f.nowFn = func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }
	f.sleepFn = func(time.Duration) {}
	f.SetTransferPolicy(TransferPolicy{Retries: 1, BreakerThreshold: 1, BreakerCooldown: time.Second})

	if _, err := f.Transfer("open", a, b, []string{p}); err == nil {
		t.Fatal("opening transfer should fail")
	}
	advance(2 * time.Second) // cooldown expired: breaker is half-open

	const herd = 8
	errs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Transfer(fmt.Sprintf("herd-%d", i), a, b, []string{p})
		}(i)
	}
	wg.Wait()

	probes, rejected := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			t.Fatalf("transfer %d succeeded against a dead site", i)
		case errors.Is(err, ErrSiteUnavailable):
			rejected++
		default:
			probes++
		}
	}
	if probes != 1 || rejected != herd-1 {
		t.Fatalf("half-open admitted %d probes (%d rejected), want exactly 1 (%d)", probes, rejected, herd-1)
	}
	if got := inj.Injected(); got != 2 {
		t.Fatalf("site absorbed %d transfer attempts, want 2 (open + single probe)", got)
	}

	// Second cooldown passes and the injector's budget is spent: the
	// lone probe succeeds, closes the circuit, and traffic flows again.
	advance(2 * time.Second)
	if _, err := f.Transfer("probe-ok", a, b, []string{p}); err != nil {
		t.Fatalf("successful probe should close the circuit: %v", err)
	}
	if _, err := f.Transfer("after", a, b, []string{p}); err != nil {
		t.Fatalf("closed circuit rejected a transfer: %v", err)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	f, a, b := twoSites(t)
	p := seedFile(t, a, "y.nc", "x")
	inj := chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Kind: chaos.PermanentKind})
	f.SetInjector(inj)
	now := time.Unix(1_700_000_000, 0)
	f.nowFn = func() time.Time { return now }
	f.sleepFn = func(time.Duration) {}
	f.SetTransferPolicy(TransferPolicy{Retries: 1, BreakerThreshold: 1, BreakerCooldown: time.Second})

	if _, err := f.Transfer("y", a, b, []string{p}); err == nil {
		t.Fatal("want failure")
	}
	if _, err := f.Transfer("y", a, b, []string{p}); !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("circuit should be open: %v", err)
	}
	now = now.Add(2 * time.Second)
	// Probe admitted but fails: the circuit must reopen immediately.
	if _, err := f.Transfer("y", a, b, []string{p}); errors.Is(err, ErrSiteUnavailable) || err == nil {
		t.Fatalf("probe should reach the transfer layer and fail: %v", err)
	}
	if _, err := f.Transfer("y", a, b, []string{p}); !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("failed probe should reopen the circuit: %v", err)
	}
}
