package esm

import (
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

// equalFields compares two fields bit-exactly.
func equalFields(a, b *grid.Field) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestRestartResumesBitExactly(t *testing.T) {
	cfg := smallCfg()
	cfg.DaysPerYear = 16

	// reference: run straight through
	ref := NewModel(cfg)
	for i := 0; i < 8; i++ {
		ref.StepDay()
	}

	// checkpointed: run 8 days, save, reload, continue
	m := NewModel(cfg)
	for i := 0; i < 8; i++ {
		m.StepDay()
	}
	path := filepath.Join(t.TempDir(), "restart.gob")
	if err := m.SaveRestart(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadRestart(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Done() {
		t.Fatal("resumed model already done")
	}

	for day := 8; day < 16; day++ {
		want := ref.StepDay()
		got := resumed.StepDay()
		if want == nil || got == nil {
			t.Fatalf("nil output at day %d", day)
		}
		if got.DayOfYear != want.DayOfYear || got.Year != want.Year {
			t.Fatalf("day identity: got %d/%d want %d/%d", got.Year, got.DayOfYear, want.Year, want.DayOfYear)
		}
		for _, v := range []string{"TREFHT", "PSL", "SST", "PRECT", "VORT850"} {
			wf, _ := want.Field(2, v)
			gf, _ := got.Field(2, v)
			if !equalFields(wf, gf) {
				t.Fatalf("day %d variable %s diverged after restart", day, v)
			}
		}
	}
	if !resumed.Done() || resumed.StepDay() != nil {
		t.Fatal("resumed model should be exhausted")
	}
}

func TestRestartPreservesGroundTruth(t *testing.T) {
	cfg := smallCfg()
	m := NewModel(cfg)
	m.StepDay()
	data, err := m.MarshalRestart()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := UnmarshalRestart(data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.GroundTruth(), resumed.GroundTruth()
	if len(a.Waves) != len(b.Waves) || len(a.Cyclones) != len(b.Cyclones) {
		t.Fatal("ground truth changed across restart")
	}
	for i := range a.Waves {
		if a.Waves[i] != b.Waves[i] {
			t.Fatalf("wave %d differs: %+v vs %+v", i, a.Waves[i], b.Waves[i])
		}
	}
}

func TestRestartRejectsCorruptData(t *testing.T) {
	if _, err := UnmarshalRestart([]byte("junk")); err == nil {
		t.Fatal("junk restart accepted")
	}
	if _, err := LoadRestart(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRestartRejectsMismatchedState(t *testing.T) {
	m := NewModel(smallCfg())
	// tamper: a restart image whose SST does not match the grid
	img := restartImage{Cfg: m.cfg, SST: []float32{1, 2, 3}}
	data, err := encodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRestart(data); err == nil {
		t.Fatal("mismatched SST accepted")
	}
	// tamper: day counter outside the run
	good, err := m.MarshalRestart()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRestart(good); err != nil {
		t.Fatal(err)
	}
	img2 := restartImage{
		Cfg: m.cfg, AbsDay: m.TotalDays() + 5,
		SST:    make([]float32, m.cfg.Grid.Size()),
		NoiseT: m.noiseT.image(), NoiseP: m.noiseP.image(), NoiseW: m.noiseW.image(),
	}
	data2, err := encodeImage(img2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRestart(data2); err == nil {
		t.Fatal("out-of-range day accepted")
	}
}

func TestPRNGDeterminismAndRanges(t *testing.T) {
	a, b := newPRNG(42), newPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := newPRNG(43)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds matched")
	}
	p := newPRNG(7)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		x := p.NormFloat64()
		sum += x
		sumSq += x * x
		if k := p.Intn(10); k < 0 || k >= 10 {
			t.Fatalf("Intn out of range: %d", k)
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newPRNG(1).Intn(0)
}

func TestPRNGSerializableMidStream(t *testing.T) {
	p := newPRNG(9)
	for i := 0; i < 137; i++ {
		p.NormFloat64()
	}
	snapshot := *p
	var wantSeq []float64
	for i := 0; i < 50; i++ {
		wantSeq = append(wantSeq, p.NormFloat64())
	}
	q := snapshot // resume from the copied state
	for i := 0; i < 50; i++ {
		if got := q.NormFloat64(); got != wantSeq[i] {
			t.Fatalf("resumed PRNG diverged at %d", i)
		}
	}
}
