package execq

import "math"

// counters are the queue's monotonic event counts (guarded by Queue.mu).
type counters struct {
	submitted      uint64
	recovered      uint64
	journalSkipped uint64 // corrupt journal lines skipped during replay
	completed      uint64
	failed         uint64
	canceled       uint64
	retried        uint64
	rejectedFull   uint64
	rejectedQuota  uint64
	rejectedRate   uint64
}

// histBounds are the exponential latency bucket upper bounds in seconds.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram (guarded by Queue.mu).
type histogram struct {
	counts []uint64 // len(histBounds)+1; last bucket is overflow
	total  uint64
	sum    float64
}

func newHistogram() histogram {
	return histogram{counts: make([]uint64, len(histBounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(histBounds) && seconds > histBounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += seconds
}

// quantile approximates the q-th quantile (0..1) by linear
// interpolation within the containing bucket.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := lo
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return histBounds[len(histBounds)-1]
}

// HistogramSummary is the JSON-friendly snapshot of one latency
// histogram.
type HistogramSummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// BoundsSeconds[i] is the upper bound of Counts[i]; the final
	// Counts entry is the overflow bucket.
	BoundsSeconds []float64 `json:"bounds_seconds"`
	Counts        []uint64  `json:"counts"`
}

func (h *histogram) summary() HistogramSummary {
	s := HistogramSummary{
		Count:         h.total,
		P50Seconds:    round6(h.quantile(0.50)),
		P90Seconds:    round6(h.quantile(0.90)),
		P99Seconds:    round6(h.quantile(0.99)),
		BoundsSeconds: histBounds,
		Counts:        append([]uint64(nil), h.counts...),
	}
	if h.total > 0 {
		s.MeanSeconds = round6(h.sum / float64(h.total))
	}
	return s
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Stats is a point-in-time snapshot of queue state, counters and
// latency histograms (wait = enqueue→dispatch, run = dispatch→finish).
type Stats struct {
	Workers      int            `json:"workers"`
	Capacity     int            `json:"capacity"`
	Depth        int            `json:"depth"`
	Running      int            `json:"running"`
	Retrying     int            `json:"retrying"`
	Draining     bool           `json:"draining"`
	PerPrincipal map[string]int `json:"per_principal,omitempty"`
	Submitted    uint64         `json:"submitted"`
	Recovered    uint64         `json:"recovered"`
	// JournalSkipped counts corrupt journal lines skipped during crash
	// recovery — a non-zero value is the counted warning that some state
	// transitions were lost to torn or garbled writes.
	JournalSkipped uint64 `json:"journal_skipped,omitempty"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	Canceled       uint64 `json:"canceled"`
	Retried        uint64 `json:"retried"`
	RejectedFull   uint64 `json:"rejected_full"`
	RejectedQuota  uint64 `json:"rejected_quota"`
	RejectedRate   uint64 `json:"rejected_rate"`

	Wait HistogramSummary `json:"wait"`
	Run  HistogramSummary `json:"run"`
}

// Stats returns a snapshot of the queue's gauges, counters and latency
// histograms.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	per := make(map[string]int, len(q.perPrincipal))
	for k, v := range q.perPrincipal {
		per[k] = v
	}
	return Stats{
		Workers:        q.cfg.Workers,
		Capacity:       q.cfg.QueueDepth,
		Depth:          len(q.heap),
		Running:        q.running,
		Retrying:       q.retrying,
		Draining:       q.draining || q.closed,
		PerPrincipal:   per,
		Submitted:      q.counters.submitted,
		Recovered:      q.counters.recovered,
		JournalSkipped: q.counters.journalSkipped,
		Completed:      q.counters.completed,
		Failed:         q.counters.failed,
		Canceled:       q.counters.canceled,
		Retried:        q.counters.retried,
		RejectedFull:   q.counters.rejectedFull,
		RejectedQuota:  q.counters.rejectedQuota,
		RejectedRate:   q.counters.rejectedRate,
		Wait:           q.waitHist.summary(),
		Run:            q.runHist.summary(),
	}
}
