// Package core implements the paper's case study end to end: the
// climate extreme-events workflow that couples the CMCC-CM3-like ESM
// simulation, Ophidia-like datacube analytics for heat/cold-wave
// indices, CNN-based tropical-cyclone localization with deterministic
// tracking validation, and map production — all orchestrated as a
// task graph on the PyCOMPSs-like runtime (Figures 2 and 3).
//
// The workflow follows the paper's §5.1 steps:
//
//  1. the ESM simulation task runs iteratively, producing one file per
//     simulated day;
//  2. concurrently, a streaming monitor detects each complete year of
//     files;
//  3. per year, analytics and ML tasks compute heat/cold-wave indices
//     and localize tropical cyclones;
//  4. results are validated and stored as NetCDF-like files, with
//     intermediate per-year maps;
//  5. final maps aggregate all years once simulation and processing
//     complete.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/chaos"
	"repro/internal/compss"
	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/tctrack"
	"repro/internal/texchange"
)

// Task kind names, numbered as in the paper's Figure 3. One graph node
// of each per-year kind exists per simulated year.
const (
	TaskESMRun          = "esm_run"           // #1 (blue)
	TaskLoadBaselineMax = "load_baseline_max" // #2
	TaskLoadBaselineMin = "load_baseline_min" // #3
	TaskMonitorStream   = "monitor_stream"    // #4 (red)
	TaskImportYear      = "import_year"       // #5
	TaskDailyMax        = "daily_tmax"        // #6
	TaskDailyMin        = "daily_tmin"        // #7
	TaskValidateStore   = "validate_store"    // #8
	TaskHWDuration      = "hw_duration"       // #9 (green)
	TaskHWNumber        = "hw_number"         // #10 (yellow)
	TaskHWFrequency     = "hw_frequency"      // #11 (red)
	TaskCWDuration      = "cw_duration"       // #12 (green)
	TaskCWNumber        = "cw_number"         // #13 (yellow)
	TaskCWFrequency     = "cw_frequency"      // #14 (red)
	TaskTCPreprocess    = "tc_preprocess"     // #15 (green)
	TaskTCInference     = "tc_inference"      // #16 (magenta)
	TaskTCGeoreference  = "tc_georeference"   // #17 (purple)
	TaskFinalMaps       = "final_maps"        // step 6 aggregation
)

// PerYearKinds lists the task kinds instantiated once per simulated
// year (Figure 3's repeated portion).
var PerYearKinds = []string{
	TaskMonitorStream, TaskImportYear, TaskDailyMax, TaskDailyMin,
	TaskValidateStore,
	TaskHWDuration, TaskHWNumber, TaskHWFrequency,
	TaskCWDuration, TaskCWNumber, TaskCWFrequency,
	TaskTCPreprocess, TaskTCInference, TaskTCGeoreference,
}

// Config parameterizes one workflow run.
type Config struct {
	// Grid is the model resolution; zero uses grid.Reduced.
	Grid grid.Grid
	// StartYear, Years, DaysPerYear, Seed and Scenario configure the
	// ESM (see esm.Config).
	StartYear   int
	Years       int
	DaysPerYear int
	Seed        int64
	Scenario    esm.Scenario
	// Events overrides the seeded extremes (nil = defaults).
	Events *esm.EventConfig
	// OutputDir receives result files and maps. Required.
	OutputDir string
	// ModelDir receives the daily model output; default
	// OutputDir/model_output.
	ModelDir string
	// Workers sizes the task runtime pool (default 4).
	Workers int
	// CubeServers sizes the datacube engine (default 4).
	CubeServers int
	// Localizer is the pre-trained TC CNN; nil disables the ML branch
	// (the deterministic tracker still runs).
	Localizer *ml.Localizer
	// TCThreshold is the CNN presence threshold (default 0.5).
	TCThreshold float64
	// ML configures the localizer's inference engine (batch size,
	// session-pool width, Reference escape hatch — see ml.Params). The
	// run's Metrics/Tracer are wired in unless ML sets its own.
	ML ml.Params
	// IndexParams overrides wave-index parameters; DaysPerYear and
	// StepsPerDay are always taken from the model configuration.
	IndexParams indices.Params
	// Checkpointer enables task-level checkpointing.
	Checkpointer compss.Checkpointer
	// Injector optionally injects deterministic faults into every task
	// attempt and checkpoint write (see internal/chaos). Nil disables
	// injection.
	Injector chaos.Injector
	// TaskRetries is the per-task retry budget applied to every task
	// definition that does not set its own (0 = no retries, matching the
	// pre-chaos behaviour).
	TaskRetries int
	// TaskTimeout bounds each task attempt's wall-clock time; a timed-out
	// attempt counts as a failed attempt. Zero disables deadlines.
	TaskTimeout time.Duration
	// Criteria configures the deterministic tracker (zero = defaults).
	Criteria tctrack.Criteria
	// ESMDayDelay models the wall-clock time the real coupled model
	// spends computing one day on its dedicated HPC allocation (§5.2:
	// projections "require several days up to a few months"). While the
	// simulation task waits, analysis tasks of completed years run —
	// the overlap the end-to-end integration buys. Zero disables it.
	ESMDayDelay time.Duration
	// FragmentLatency models the distributed datacube deployment's
	// per-fragment storage/network access time (datacube.Config).
	FragmentLatency time.Duration
	// OnlineDiagnostics enables the in-run validation the paper's §3
	// describes: every simulated day's global indicators are computed
	// and checked against plausibility bounds; a violation fails the
	// ESM task (and therefore the workflow) immediately instead of
	// letting a corrupted simulation burn its allocation.
	OnlineDiagnostics bool
	// Metrics, when set, registers the run's datacube and task-runtime
	// instruments on the shared observability registry (see
	// internal/obs); nil disables metric recording.
	Metrics *obs.Registry
	// Tracer, when set, records one span per task attempt so the run
	// can be exported as a Chrome trace timeline; nil disables tracing.
	Tracer *obs.Tracer
	// FuseOperators controls whether the datacube index tasks compile
	// their operator chains into fused per-fragment passes
	// (datacube.Plan) instead of materializing every intermediate cube.
	// Nil means on (the default); point at false to force the eager
	// operator-at-a-time execution for comparison runs.
	FuseOperators *bool
	// Exchange, when non-nil, routes daily model output through the
	// in-memory tensor exchange: the ESM task publishes each day's
	// variables as it writes the file, and the per-year consumers
	// (tc_preprocess, import_year) read the published tensors instead of
	// re-reading the files — the SmartSim-style in-memory handoff that
	// removes the file write→watch→read round-trip from the hot path.
	// Files are still written (they remain the durable record and the
	// fallback: a consumer that misses the exchange reads them), so
	// results are identical with or without an exchange. Ignored in
	// AttachOnly mode, where no in-process producer exists. The caller
	// owns the exchange's lifecycle (Close after the run).
	Exchange *texchange.Exchange
	// OnlineTrainer, when non-nil, closes the ML-in-the-loop gap: the
	// tc_georeference task feeds each processed year's field sets —
	// pseudo-labelled by the deterministic tracker — to the trainer,
	// which hot-swaps improved weights into Localizer while later years
	// are still simulating. Detections then depend on task timing, so
	// leave this nil for reproducibility-sensitive runs. The caller owns
	// the trainer's lifecycle (Close after the run).
	OnlineTrainer *ml.OnlineTrainer
	// AttachOnly skips the ESM task and instead watches ModelDir for
	// daily files written by an external producer (a real model run, or
	// esmgen in another process) — the decoupled operational deployment
	// where the analysis workflow "dynamically adapts to the number of
	// files produced by the ESM" (§6). The run completes after Years
	// complete years have appeared.
	AttachOnly bool
}

func (c Config) withDefaults() Config {
	if c.Grid.NLat == 0 {
		c.Grid = grid.Reduced
	}
	if c.StartYear == 0 {
		c.StartYear = 2040
	}
	if c.Years <= 0 {
		c.Years = 1
	}
	if c.DaysPerYear <= 0 {
		c.DaysPerYear = 365
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CubeServers <= 0 {
		c.CubeServers = 4
	}
	if c.TCThreshold == 0 {
		c.TCThreshold = 0.5
	}
	if c.ModelDir == "" {
		c.ModelDir = filepath.Join(c.OutputDir, "model_output")
	}
	if c.Criteria == (tctrack.Criteria{}) {
		c.Criteria = tctrack.DefaultCriteria()
	}
	c.IndexParams.DaysPerYear = c.DaysPerYear
	c.IndexParams.StepsPerDay = esm.StepsPerDay
	c.IndexParams = c.IndexParams.Defaults()
	if c.Localizer != nil {
		p := c.ML
		if p.Metrics == nil {
			p.Metrics = c.Metrics
		}
		if p.Tracer == nil {
			p.Tracer = c.Tracer
		}
		c.Localizer.Configure(p)
	}
	return c
}

// fuse reports whether the datacube tasks should use fused plan
// execution (the default; see Config.FuseOperators).
func (c Config) fuse() bool { return c.FuseOperators == nil || *c.FuseOperators }

func (c Config) esmConfig() esm.Config {
	return esm.Config{
		Grid:        c.Grid,
		StartYear:   c.StartYear,
		Years:       c.Years,
		DaysPerYear: c.DaysPerYear,
		Seed:        c.Seed,
		Scenario:    c.Scenario,
		Events:      c.Events,
	}
}

// IndexFiles are the exported NetCDF-like paths of one wave family for
// one year.
type IndexFiles struct {
	Duration  string
	Number    string
	Frequency string
}

// YearResult aggregates one simulated year's products.
type YearResult struct {
	Year int
	// HeatWave / ColdWave index file paths.
	HeatWave IndexFiles
	ColdWave IndexFiles
	// HWNumberMean is the spatial mean heat-wave count (quick-look
	// statistic used by examples and tests).
	HWNumberMean float64
	CWNumberMean float64
	// CNNDetections are the ML-localized TC instants of the year.
	CNNDetections []ml.Detection
	// TrackerTracks is the number of deterministic tracks found.
	TrackerTracks int
	// TrackerAgreementKm is the mean distance between each CNN
	// detection and the nearest deterministic track point of the same
	// year (negative when either side is empty) — the validation figure
	// the paper's §5.4 calls for.
	TrackerAgreementKm float64
	// MapPath is the intermediate per-year heat-wave-number map.
	MapPath string
}

// Result is the complete workflow outcome.
type Result struct {
	Years []YearResult
	// GraphDOT is the executed task graph in Graphviz format (Fig 3).
	GraphDOT string
	// FilesProduced counts daily model files written.
	FilesProduced int
	// FinalMapPath is the all-years aggregate heat-wave map (step 6).
	FinalMapPath string
	// CubeStats snapshots the datacube engine counters.
	CubeStats datacube.Stats
	// RuntimeStats snapshots the task runtime counters.
	RuntimeStats compss.Stats
	// ProvenancePath is the exported execution-lineage JSON document.
	ProvenancePath string
	// Gantt is an ASCII Gantt chart of the executed tasks, showing the
	// concurrency between the simulation and the per-year analytics.
	Gantt string
}

// resultOf finds the YearResult for a year.
func (r *Result) resultOf(year int) *YearResult {
	for i := range r.Years {
		if r.Years[i].Year == year {
			return &r.Years[i]
		}
	}
	return nil
}

// cubeMean computes the spatial mean of a per-cell index cube.
func cubeMean(c *datacube.Cube) (float64, error) {
	agg, err := c.AggregateRows("avg")
	if err != nil {
		return 0, err
	}
	defer agg.Delete()
	red, err := agg.Reduce("avg")
	if err != nil {
		return 0, err
	}
	defer red.Delete()
	return red.Scalar()
}

// exportIndex writes one index cube to the output directory under the
// index's own variable name.
func exportIndex(c *datacube.Cube, dir, name string, year int) (string, error) {
	c.SetMeasure(name)
	c.SetMeta("year", fmt.Sprint(year))
	path := filepath.Join(dir, fmt.Sprintf("%s_%d.nc", name, year))
	if err := c.ExportFile(path); err != nil {
		return "", err
	}
	return path, nil
}
