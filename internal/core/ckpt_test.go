package core

import "repro/internal/compss"

// openCkpt is a test shim for the file checkpointer.
func openCkpt(path string) (compss.Checkpointer, error) {
	return compss.OpenFileCheckpointer(path)
}
