# climate-eflows — build/test/experiment targets

GO ?= go

.PHONY: all check build vet test race bench examples experiments clean

all: build vet test

# tier-1 gate: everything a PR must keep green
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# one benchmark per reproduced figure/claim (see EXPERIMENTS.md)
bench:
	$(GO) test -bench=. -benchmem .

# runnable demonstrations of the public API
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heatwaves
	$(GO) run ./examples/cyclonetracking
	$(GO) run ./examples/hpcwaas
	$(GO) run ./examples/ensemble

# experiment drivers printing the paper-shape series
experiments:
	$(GO) run ./cmd/wfbench -exp all
	$(GO) run ./cmd/tcexperiment

clean:
	$(GO) clean ./...
