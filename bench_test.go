// Package repro's root benchmark harness regenerates every figure and
// performance claim of the paper (see DESIGN.md's experiment index and
// EXPERIMENTS.md for measured results):
//
//	BenchmarkFig3TaskGraph            Figure 3 — executed task graph
//	BenchmarkFig4Pipeline             Figure 4 — heat-wave index pipeline
//	BenchmarkE2EConcurrentVsSequential C1 — overlap vs two-stage baseline
//	BenchmarkBaselineReuse            C2 — in-memory baseline reuse
//	BenchmarkCubeScaling              C3 — I/O-server scaling
//	BenchmarkClusterShardSweep        C3 — sharded cluster scatter/gather scaling
//	BenchmarkWireCodec                C3 — gob vs v2 wire codec throughput
//	BenchmarkRuntimeThroughput        C4 — task-graph parallelism
//	BenchmarkSchedulerOverhead        C4 — per-task runtime overhead
//	BenchmarkCNNInference             C5 — ML localizer inference cost
//	BenchmarkCNNInferenceBatched      C5 — reference vs compiled batched engine
//	BenchmarkCNNTrainStep             C5 — one training step (layer path)
//	BenchmarkDetectStep               C5 — full per-step patch sweep
//	BenchmarkCheckpointOverhead       C6 — checkpointing cost
//	BenchmarkStreamDetectLatency      C7 — year-completion detection
//	BenchmarkESMHandoff               C8 — file vs tensor-exchange handoff
//	BenchmarkPyramidFrontier          F6 — coarse-first tolerance frontier
//	BenchmarkLocalityPlacement        ablation — locality-aware placement
//
// Run with: go test -bench=. -benchmem .
package repro

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compss"
	"repro/internal/core"
	"repro/internal/cubecluster"
	"repro/internal/cubeserver"
	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/execq"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ml"
	"repro/internal/ncdf"
	"repro/internal/stream"
	"repro/internal/tctrack"
	"repro/internal/texchange"
)

// benchEvents keeps every branch of the workflow active.
var benchEvents = &esm.EventConfig{
	HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
	WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
}

func benchConfig(b *testing.B, years int) core.Config {
	b.Helper()
	return core.Config{
		Grid:        grid.Grid{NLat: 24, NLon: 48},
		Years:       years,
		DaysPerYear: 12,
		Seed:        7,
		OutputDir:   b.TempDir(),
		Workers:     4,
		CubeServers: 2,
		Events:      benchEvents,
	}
}

// BenchmarkFig3TaskGraph executes the one-year workflow and reports the
// size of the reproduced Figure 3 task graph.
func BenchmarkFig3TaskGraph(b *testing.B) {
	var nodes int
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(b, 1)
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes = res.RuntimeStats.Invoked
	}
	b.ReportMetric(float64(nodes), "graph-nodes")
}

// BenchmarkFig4Pipeline measures the heat-wave index pipeline that
// produces Figure 4's map, on one pre-generated year.
func BenchmarkFig4Pipeline(b *testing.B) {
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	dir := b.TempDir()
	model := esm.NewModel(esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 7, Events: benchEvents})
	files, err := model.Run(esm.RunOptions{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()
	baseline, err := indices.BuildBaseline(engine, g, days)
	if err != nil {
		b.Fatal(err)
	}
	params := indices.Params{DaysPerYear: days}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := indices.HeatWaves(engine, files, baseline, params)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Duration.Delete()
		_ = res.Number.Delete()
		_ = res.Frequency.Delete()
	}
}

// BenchmarkFusedVsEagerPipeline isolates the fused data plane's win on
// the Figure-4 workload: the same heat-wave chain on the same resident
// cube, executed operator-at-a-time (eager) vs as one fused
// multi-output pass (datacube.Plan). The import is hoisted out so the
// numbers compare pure pipeline execution.
func BenchmarkFusedVsEagerPipeline(b *testing.B) {
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	model := esm.NewModel(esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 7, Events: benchEvents})
	files, err := model.Run(esm.RunOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()
	baseline, err := indices.BuildBaseline(engine, g, days)
	if err != nil {
		b.Fatal(err)
	}
	temp, err := engine.ImportFiles(files, "TREFHT", "time")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"eager", true}, {"fused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			params := indices.Params{DaysPerYear: days, Eager: mode.eager}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := indices.HeatWavesFromCube(temp, baseline, params)
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Duration.Delete()
				_ = res.Number.Delete()
				_ = res.Frequency.Delete()
			}
		})
	}
}

// BenchmarkPyramidFrontier is experiment F6: the coarse-first tolerance
// frontier over the resolution pyramid (DESIGN.md §15), on the
// cloud-cover climatology pipeline — a field smooth enough at tier
// granularity for coarse blocks to genuinely accept. Each sub-benchmark
// reports cells/op (array elements touched, the deterministic cost
// metric) alongside walltime.
func BenchmarkPyramidFrontier(b *testing.B) {
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	model := esm.NewModel(esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 7, Events: benchEvents})
	files, err := model.Run(esm.RunOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()
	cld, err := engine.ImportFiles(files, "CLDTOT", "time")
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{0, 0.02, 0.1, 0.2} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			before := engine.Stats().CellsProcessed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs, err := cld.Lazy().Tolerance(eps).ExecuteBranches(
					datacube.Branch().Reduce("avg"),
					datacube.Branch().Reduce("max"),
				)
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range outs {
					_ = o.Delete()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(engine.Stats().CellsProcessed-before)/float64(b.N), "cells/op")
		})
	}
}

// BenchmarkE2EConcurrentVsSequential is experiment C1: the integrated
// workflow overlaps analysis with the (latency-dominated) simulation.
func BenchmarkE2EConcurrentVsSequential(b *testing.B) {
	mk := func(years int) core.Config {
		cfg := benchConfig(b, years)
		cfg.ESMDayDelay = 10 * time.Millisecond
		cfg.FragmentLatency = 3 * time.Millisecond
		return cfg
	}
	for _, years := range []int{1, 2} {
		b.Run(fmt.Sprintf("sequential/years=%d", years), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunSequential(mk(years)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("concurrent/years=%d", years), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(mk(years)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineReuse is experiment C2: index pipelines with the
// climatology baseline resident in memory vs re-imported each time.
func BenchmarkBaselineReuse(b *testing.B) {
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	model := esm.NewModel(esm.Config{Grid: g, Years: 1, DaysPerYear: days, Seed: 7, Events: benchEvents})
	files, err := model.Run(esm.RunOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	baseDir := b.TempDir()
	prep := datacube.NewEngine(datacube.Config{Servers: 2})
	bl, err := indices.BuildBaseline(prep, g, days)
	if err != nil {
		b.Fatal(err)
	}
	if err := bl.TMax.ExportFile(filepath.Join(baseDir, "tmax.nc")); err != nil {
		b.Fatal(err)
	}
	if err := bl.TMin.ExportFile(filepath.Join(baseDir, "tmin.nc")); err != nil {
		b.Fatal(err)
	}
	prep.Close()
	params := indices.Params{DaysPerYear: days}

	load := func(engine *datacube.Engine) *indices.Baseline {
		tmax, err := engine.ImportFile(filepath.Join(baseDir, "tmax.nc"), "TMAX_CLIM", "dayofyear")
		if err != nil {
			b.Fatal(err)
		}
		tmin, err := engine.ImportFile(filepath.Join(baseDir, "tmin.nc"), "TMIN_CLIM", "dayofyear")
		if err != nil {
			b.Fatal(err)
		}
		return &indices.Baseline{TMax: tmax, TMin: tmin, Grid: g, DaysPerYear: days}
	}
	free := func(r *indices.Result) {
		_ = r.Duration.Delete()
		_ = r.Number.Delete()
		_ = r.Frequency.Delete()
	}

	b.Run("reuse", func(b *testing.B) {
		engine := datacube.NewEngine(datacube.Config{Servers: 2})
		defer engine.Close()
		bl := load(engine)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := indices.HeatWaves(engine, files, bl, params)
			if err != nil {
				b.Fatal(err)
			}
			free(r)
		}
		b.ReportMetric(float64(engine.Stats().FileReads)/float64(b.N), "file-reads/op")
	})
	b.Run("reimport", func(b *testing.B) {
		engine := datacube.NewEngine(datacube.Config{Servers: 2})
		defer engine.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bl := load(engine)
			r, err := indices.HeatWaves(engine, files, bl, params)
			if err != nil {
				b.Fatal(err)
			}
			free(r)
			_ = bl.TMax.Delete()
			_ = bl.TMin.Delete()
		}
		b.ReportMetric(float64(engine.Stats().FileReads)/float64(b.N), "file-reads/op")
	})
}

// BenchmarkCubeScaling is experiment C3: operator latency vs the number
// of I/O servers, with per-fragment storage latency as on a
// distributed deployment.
func BenchmarkCubeScaling(b *testing.B) {
	for _, servers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			engine := datacube.NewEngine(datacube.Config{
				Servers: servers, FragmentsPerCube: 32,
				FragmentLatency: time.Millisecond,
			})
			defer engine.Close()
			cube, err := engine.NewCubeFromFunc("m",
				[]datacube.Dimension{{Name: "cell", Size: 4096}},
				datacube.Dimension{Name: "time", Size: 64},
				func(row, t int) float32 { return float32(row + t) })
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := cube.Reduce("max")
				if err != nil {
					b.Fatal(err)
				}
				_ = out.Delete()
			}
		})
	}
}

// BenchmarkClusterShardSweep extends C3 across the sharded datacube
// cluster: the same fused pipeline (apply, reduce, aggrows barrier)
// dispatched through the coordinator at 1/2/4/8 shards. The global
// fragment count is held constant — each shard owns 32/shards
// fragments of the leading dimension — so the per-shard simulated
// storage latency shrinks as shards are added, while only reduced
// partials return at the barrier.
func BenchmarkClusterShardSweep(b *testing.B) {
	dir := b.TempDir()
	ds := ncdf.NewDataset()
	const lat, lon, steps = 512, 8, 64
	for _, d := range []struct {
		name string
		size int
	}{{"lat", lat}, {"lon", lon}, {"time", steps}} {
		if err := ds.AddDim(d.name, d.size); err != nil {
			b.Fatal(err)
		}
	}
	data := make([]float32, lat*lon*steps)
	for i := range data {
		data[i] = float32((i * 7) % 97)
	}
	if _, err := ds.AddVar("T", []string{"lat", "lon", "time"}, data); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "field.nc")
	if err := ncdf.WriteFile(path, ds); err != nil {
		b.Fatal(err)
	}
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x>50 ? x : 0"},
		{Op: "reduce", RowOp: "sum"},
		{Op: "aggrows", RowOp: "avg"},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl, err := cubecluster.NewLocal(cubecluster.Config{
				Shards: shards,
				Engine: datacube.Config{
					Servers: 1, FragmentsPerCube: 32 / shards,
					FragmentLatency: time.Millisecond,
				},
				SpoolDir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			imp := cl.Dispatch(&cubeserver.Request{
				Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time",
			})
			if err := cubeserver.ResponseError(imp); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp := cl.Dispatch(&cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
				if err := cubeserver.ResponseError(resp); err != nil {
					b.Fatal(err)
				}
				cl.Dispatch(&cubeserver.Request{Op: "delete", CubeID: resp.Shape.CubeID})
			}
			_, gathered := cl.BytesStats()
			b.ReportMetric(gathered/float64(b.N), "gathered-B/op")
		})
	}
}

// BenchmarkWireCodec compares the two cubeserver wire codecs on the
// bulk-payload path: a putcube request carrying 1 KB / 1 MB / 16 MB of
// float32 cells, encoded and decoded through a steady-state gob stream
// (the legacy session codec, type info amortized away) vs the v2
// binary framing (raw little-endian float blocks, no reflection).
// Throughput is payload MB/s for one encode+decode round trip.
func BenchmarkWireCodec(b *testing.B) {
	sizes := []struct {
		name       string
		rows, cols int
	}{
		{"1KB", 1, 256},
		{"1MB", 512, 512},
		{"16MB", 2048, 2048},
	}
	for _, sz := range sizes {
		values := make([][]float32, sz.rows)
		for r := range values {
			row := make([]float32, sz.cols)
			for c := range row {
				row[c] = float32((r*sz.cols+c)%97) * 0.5
			}
			values[r] = row
		}
		req := &cubeserver.Request{
			Op: "putcube", Var: "T", ImplicitDim: "time",
			Dims:   []datacube.Dimension{{Name: "cell", Size: sz.rows}},
			Values: values,
		}
		payload := int64(sz.rows) * int64(sz.cols) * 4
		b.Run("gob/"+sz.name, func(b *testing.B) {
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			dec := gob.NewDecoder(&buf)
			var out cubeserver.Request
			b.SetBytes(payload)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(req); err != nil {
					b.Fatal(err)
				}
				out = cubeserver.Request{}
				if err := dec.Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("v2/"+sz.name, func(b *testing.B) {
			var scratch []byte
			var out cubeserver.Request
			b.SetBytes(payload)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = cubeserver.AppendRequestV2(scratch[:0], req)
				if err := cubeserver.DecodeRequestV2(scratch, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFragmentSweep is the DESIGN.md fragment-count ablation.
// Finding: with a fixed per-fragment access latency, total operator
// latency grows linearly with fragments beyond the server count —
// over-fragmentation pays pure per-access overhead, so the sweet spot
// is a small multiple of the server count (exactly the fragmentation
// guidance Ophidia documents).
func BenchmarkFragmentSweep(b *testing.B) {
	for _, frags := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("frags=%d", frags), func(b *testing.B) {
			engine := datacube.NewEngine(datacube.Config{
				Servers: 4, FragmentsPerCube: frags,
				FragmentLatency: time.Millisecond,
			})
			defer engine.Close()
			cube, err := engine.NewCubeFromFunc("m",
				[]datacube.Dimension{{Name: "cell", Size: 4096}},
				datacube.Dimension{Name: "time", Size: 64},
				func(row, t int) float32 { return float32(row + t) })
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := cube.Reduce("max")
				if err != nil {
					b.Fatal(err)
				}
				_ = out.Delete()
			}
		})
	}
}

// BenchmarkRuntimeThroughput is experiment C4: independent
// latency-bound tasks complete faster as workers are added.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := compss.NewRuntime(compss.Config{Workers: workers})
				task, err := rt.Register(compss.TaskDef{
					Name:    "remote",
					Outputs: 0,
					Fn: func([]any) ([]any, error) {
						time.Sleep(time.Millisecond)
						return nil, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 64; j++ {
					if _, err := rt.Invoke(task); err != nil {
						b.Fatal(err)
					}
				}
				if err := rt.Shutdown(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerOverhead measures the runtime's per-task cost with
// empty task bodies (pure dependency bookkeeping + dispatch).
func BenchmarkSchedulerOverhead(b *testing.B) {
	rt := compss.NewRuntime(compss.Config{Workers: 4})
	nop, err := rt.Register(compss.TaskDef{
		Name:    "nop",
		Outputs: 0,
		Fn:      func([]any) ([]any, error) { return nil, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(nop); err != nil {
			b.Fatal(err)
		}
	}
	if err := rt.Shutdown(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCNNInference is the C5 cost figure: one patch prediction
// through the TC localizer CNN.
func BenchmarkCNNInference(b *testing.B) {
	loc, err := ml.NewLocalizer(12, 12, 7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := ml.NewTensor(len(ml.Channels), 12, 12)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = loc.Predict(x)
	}
}

// BenchmarkCNNInferenceBatched compares the layer-by-layer reference
// with the compiled im2col/GEMM engine at a realistic per-step patch
// count (the 48×96 grid tiles into 32 12×12 patches). Per-patch cost
// is reported as ns/patch; the batched path must be zero-alloc.
func BenchmarkCNNInferenceBatched(b *testing.B) {
	const patches = 32
	rng := rand.New(rand.NewSource(1))
	x := ml.NewTensor(patches, len(ml.Channels), 12, 12)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	perPatch := len(ml.Channels) * 12 * 12

	b.Run("reference", func(b *testing.B) {
		loc, err := ml.NewLocalizer(12, 12, 7)
		if err != nil {
			b.Fatal(err)
		}
		loc.Configure(ml.Params{Reference: true})
		one := ml.NewTensor(len(ml.Channels), 12, 12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < patches; p++ {
				copy(one.Data, x.Data[p*perPatch:(p+1)*perPatch])
				_ = loc.Predict(one)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*patches), "ns/patch")
	})
	b.Run("batched", func(b *testing.B) {
		loc, err := ml.NewLocalizer(12, 12, 7)
		if err != nil {
			b.Fatal(err)
		}
		s, err := loc.Compile(ml.Params{MaxBatch: patches})
		if err != nil {
			b.Fatal(err)
		}
		s.PredictBatch(x) // warm the session buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.PredictBatch(x)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*patches), "ns/patch")
	})
}

// BenchmarkCNNTrainStep is one forward+backward pass through the layer
// path (the ReLU/MaxPool buffer-reuse beneficiary).
func BenchmarkCNNTrainStep(b *testing.B) {
	loc, err := ml.NewLocalizer(12, 12, 7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := ml.NewTensor(len(ml.Channels), 12, 12)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	grad := ml.NewTensor(3)
	grad.Data[0], grad.Data[1], grad.Data[2] = 0.5, 0.1, -0.1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = loc.Net.Forward(x)
		loc.Net.Backward(grad)
	}
}

// BenchmarkDetectStep is the end-to-end per-step sweep on real model
// fields: channel extraction, standardization, batched parallel
// inference and geo-referencing.
func BenchmarkDetectStep(b *testing.B) {
	m := esm.NewModel(esm.Config{
		Grid: grid.Grid{NLat: 48, NLon: 96}, StartYear: 2040, Years: 1, DaysPerYear: 30, Seed: 42,
		Events: &esm.EventConfig{CyclonesPerYear: 4, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6},
	})
	var day *esm.DayOutput
	for i := 0; i < 5; i++ {
		day = m.StepDay()
	}
	for _, mode := range []struct {
		name string
		p    ml.Params
	}{
		{"reference", ml.Params{Reference: true}},
		{"engine", ml.Params{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			loc, err := ml.NewLocalizer(12, 12, 7)
			if err != nil {
				b.Fatal(err)
			}
			loc.Configure(mode.p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := loc.DetectStep(day, 0, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointOverhead is experiment C6: the task runtime with
// and without checkpoint recording.
func BenchmarkCheckpointOverhead(b *testing.B) {
	run := func(b *testing.B, cp compss.Checkpointer) {
		for i := 0; i < b.N; i++ {
			rt := compss.NewRuntime(compss.Config{Workers: 2, Checkpointer: cp})
			task, err := rt.Register(compss.TaskDef{
				Name:    fmt.Sprintf("step%d", i),
				Outputs: 1,
				Fn:      func(args []any) ([]any, error) { return []any{args[0]}, nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 50; j++ {
				if _, err := rt.Invoke(task, compss.In(j)); err != nil {
					b.Fatal(err)
				}
			}
			if err := rt.Shutdown(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-checkpoint", func(b *testing.B) { run(b, nil) })
	b.Run("file-checkpoint", func(b *testing.B) {
		cp, err := compss.OpenFileCheckpointer(filepath.Join(b.TempDir(), "b.ckpt"))
		if err != nil {
			b.Fatal(err)
		}
		defer cp.Close()
		run(b, cp)
	})
}

// BenchmarkStreamDetectLatency is experiment C7: time from the last
// daily file of a year landing on disk to the year batch being emitted.
func BenchmarkStreamDetectLatency(b *testing.B) {
	const days = 5
	var total time.Duration
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		w, err := stream.NewDirWatcher(dir, `\.nc$`)
		if err != nil {
			b.Fatal(err)
		}
		w.Interval = time.Millisecond
		w.Start()
		batcher := stream.NewYearBatcher(days, esm.YearOf)
		for d := 0; d < days; d++ {
			if err := os.WriteFile(filepath.Join(dir, esm.FileName(2040, d)), []byte("x"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		t0 := time.Now()
		done := false
		for !done {
			path, ok := w.Stream().Next()
			if !ok {
				b.Fatal("stream closed early")
			}
			if len(batcher.Add(path)) > 0 {
				done = true
			}
		}
		total += time.Since(t0)
		w.Stop()
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N), "detect-µs")
}

// BenchmarkLocalityPlacement is the DESIGN.md ablation: scheduling
// consumers on the node already holding their input data vs random
// placement, measured as bytes moved on the simulated cluster.
func BenchmarkLocalityPlacement(b *testing.B) {
	const items = 64
	run := func(b *testing.B, locality bool) {
		var moved int64
		for i := 0; i < b.N; i++ {
			c := cluster.New(4, 8, 16384)
			rng := rand.New(rand.NewSource(int64(i)))
			names := c.NodeNames()
			for k := 0; k < items; k++ {
				key := fmt.Sprintf("cube%d", k)
				owner := names[rng.Intn(len(names))]
				if err := c.Place(key, owner, 1<<20); err != nil {
					b.Fatal(err)
				}
				var target string
				if locality {
					target = c.BestNodeFor([]string{key})
				} else {
					target = names[rng.Intn(len(names))]
				}
				if _, _, err := c.Fetch(key, target); err != nil {
					b.Fatal(err)
				}
			}
			moved += c.Stats().BytesMoved
		}
		b.ReportMetric(float64(moved)/float64(b.N)/(1<<20), "MB-moved/op")
	}
	b.Run("locality-aware", func(b *testing.B) { run(b, true) })
	b.Run("random", func(b *testing.B) { run(b, false) })
}

// BenchmarkBackfillAblation compares batch-scheduler makespans with
// and without LSF-style backfill on a mixed wide/narrow job stream
// (virtual time; the cluster simulation advances event to event).
func BenchmarkBackfillAblation(b *testing.B) {
	workload := func(c *cluster.Cluster, rng *rand.Rand) {
		for k := 0; k < 200; k++ {
			if rng.Intn(6) == 0 {
				// full-node jobs block the FIFO head while cores sit idle
				_, _ = c.Submit("wide", cluster.Resources{Cores: 8}, 10)
			} else {
				_, _ = c.Submit("narrow", cluster.Resources{Cores: 1}, 1+rng.Float64())
			}
		}
	}
	for _, backfill := range []bool{true, false} {
		name := "backfill"
		if !backfill {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			var makespan, wait float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(4, 8, 65536)
				c.Backfill = backfill
				workload(c, rand.New(rand.NewSource(42)))
				makespan = c.Drain()
				wait = c.Stats().TotalWait
			}
			b.ReportMetric(makespan, "virt-makespan")
			b.ReportMetric(wait, "virt-totalwait")
			b.ReportMetric(0, "ns/op") // virtual-time study; wall time is noise
		})
	}
}

// BenchmarkESMDay measures one simulated day of the coupled model
// (reduced grid), the producer side of the whole pipeline.
func BenchmarkESMDay(b *testing.B) {
	model := esm.NewModel(esm.Config{Grid: grid.Reduced, Years: 1000, DaysPerYear: 365, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := model.StepDay(); d == nil {
			b.Fatal("model exhausted")
		}
	}
}

// BenchmarkTrackerDetect measures the deterministic TC detector on one
// instantaneous field set.
func BenchmarkTrackerDetect(b *testing.B) {
	model := esm.NewModel(esm.Config{
		Grid: grid.Grid{NLat: 48, NLon: 96}, Years: 1, DaysPerYear: 10, Seed: 3,
		Events: &esm.EventConfig{CyclonesPerYear: 2, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6},
	})
	var day *esm.DayOutput
	for i := 0; i < 5; i++ {
		day = model.StepDay()
	}
	crit := tctrack.DefaultCriteria()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tctrack.DetectStep(day, 0, crit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkESMHandoff measures the ESM→consumer handoff of one
// simulated day's TC-branch variables three ways: through the file
// system (write the daily NetCDF, read it back, decode the variables —
// the pre-texchange hot path), through the in-memory tensor exchange
// (zero-copy publish + wait), and through an exchange squeezed under a
// tiny memory budget so every tensor round-trips the spill file. The
// gap between "file" and "exchange" is the latency the SmartSim-style
// handoff removes; "exchange-spill" bounds the worst case when the
// budget is exhausted.
func BenchmarkESMHandoff(b *testing.B) {
	g := grid.Grid{NLat: 48, NLon: 96}
	handoffVars := []string{"PSL", "U850", "V850", "VORT850", "T500"}
	model := esm.NewModel(esm.Config{
		Grid: g, Years: 1, DaysPerYear: 4, Seed: 7,
		Events: &esm.EventConfig{CyclonesPerYear: 2, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6},
	})
	var days []*esm.DayOutput
	var datasets []*ncdf.Dataset
	for {
		d := model.StepDay()
		if d == nil {
			break
		}
		ds, err := d.ToDataset()
		if err != nil {
			b.Fatal(err)
		}
		days, datasets = append(days, d), append(datasets, ds)
	}
	dayBytes := int64(len(handoffVars) * esm.StepsPerDay * g.NLat * g.NLon * 4)
	perOp := dayBytes * int64(len(days))

	consume := func(perVar map[string][]float32) float32 {
		var s float32
		for _, v := range handoffVars {
			s += perVar[v][0]
		}
		return s
	}

	b.Run("file", func(b *testing.B) {
		dir := b.TempDir()
		b.SetBytes(perOp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range days {
				path, err := d.WriteDay(dir)
				if err != nil {
					b.Fatal(err)
				}
				ds, err := ncdf.ReadFile(path)
				if err != nil {
					b.Fatal(err)
				}
				perVar := make(map[string][]float32, len(handoffVars))
				for _, v := range handoffVars {
					vv, err := ds.Var(v)
					if err != nil {
						b.Fatal(err)
					}
					perVar[v] = vv.Data
				}
				_ = consume(perVar)
			}
		}
	})

	runExchange := func(b *testing.B, cfg texchange.Config) {
		x := texchange.New(cfg)
		defer x.Close()
		ctx := context.Background()
		b.SetBytes(perOp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for di, d := range days {
				for _, v := range handoffVars {
					vv, err := datasets[di].Var(v)
					if err != nil {
						b.Fatal(err)
					}
					t := texchange.Tensor{
						Name:  fmt.Sprintf("bench/d%03d/%s", d.DayOfYear, v),
						Shape: []int{esm.StepsPerDay, g.NLat, g.NLon},
						Data:  vv.Data,
					}
					if _, err := x.Publish(t); err != nil {
						b.Fatal(err)
					}
				}
				perVar := make(map[string][]float32, len(handoffVars))
				for _, v := range handoffVars {
					t, err := x.Wait(ctx, fmt.Sprintf("bench/d%03d/%s", d.DayOfYear, v), 1)
					if err != nil {
						b.Fatal(err)
					}
					perVar[v] = t.Data
				}
				_ = consume(perVar)
				for _, v := range handoffVars {
					x.Remove(fmt.Sprintf("bench/d%03d/%s", d.DayOfYear, v))
				}
			}
		}
	}

	b.Run("exchange", func(b *testing.B) {
		runExchange(b, texchange.Config{})
	})
	b.Run("exchange-spill", func(b *testing.B) {
		// Budget below one tensor's payload: every publish evicts, every
		// wait loads the payload back from the spill file.
		runExchange(b, texchange.Config{Budget: 1, SpillDir: b.TempDir()})
	})
}

// BenchmarkExecQueueThroughput measures the HPCWaaS execution queue's
// job throughput across a worker-pool sweep (the admission-control
// subsystem in front of the Execution API): no-op jobs isolate the
// queue's own dispatch overhead.
func BenchmarkExecQueueThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			q, err := execq.New(execq.Config{Workers: workers, QueueDepth: b.N + workers})
			if err != nil {
				b.Fatal(err)
			}
			defer q.Close()
			run := func(ctx context.Context) error { return nil }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Submit(execq.Job{Run: run}); err != nil {
					b.Fatal(err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := q.WaitIdle(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
