package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable network stage. Forward caches whatever
// Backward needs; a Layer instance therefore serves one goroutine at a
// time (clone the network for concurrent inference).
type Layer interface {
	Forward(x *Tensor) *Tensor
	Backward(grad *Tensor) *Tensor
	// Params returns parameter/gradient slice pairs for the optimizer;
	// stateless layers return nil.
	Params() []ParamGrad
}

// ParamGrad pairs a parameter vector with its gradient accumulator.
type ParamGrad struct {
	W []float64
	G []float64
}

// --- Conv2D -------------------------------------------------------------

// Conv2D is a stride-1, valid-padding 2-D convolution over (C,H,W)
// input tensors.
type Conv2D struct {
	InC, OutC, K int
	W            []float64 // [outC][inC][k][k]
	B            []float64 // [outC]
	GW, GB       []float64

	x *Tensor // cached input
}

// NewConv2D builds a conv layer with He-initialized weights drawn from
// rng.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k,
		W:  make([]float64, outC*inC*k*k),
		B:  make([]float64, outC),
		GW: make([]float64, outC*inC*k*k),
		GB: make([]float64, outC),
	}
	std := math.Sqrt(2 / float64(inC*k*k))
	for i := range c.W {
		c.W[i] = rng.NormFloat64() * std
	}
	return c
}

func (c *Conv2D) widx(o, i, a, b int) int { return ((o*c.InC+i)*c.K+a)*c.K + b }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("ml: conv input shape %v, want (%d,H,W)", x.Shape, c.InC))
	}
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	out := NewTensor(c.OutC, oh, ow)
	for o := 0; o < c.OutC; o++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				sum := c.B[o]
				for ic := 0; ic < c.InC; ic++ {
					for a := 0; a < c.K; a++ {
						for b := 0; b < c.K; b++ {
							sum += c.W[c.widx(o, ic, a, b)] * x.At3(ic, i+a, j+b)
						}
					}
				}
				out.Set3(o, i, j, sum)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	oh, ow := grad.Shape[1], grad.Shape[2]
	dx := NewTensor(c.InC, h, w)
	for o := 0; o < c.OutC; o++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				g := grad.At3(o, i, j)
				if g == 0 {
					continue
				}
				c.GB[o] += g
				for ic := 0; ic < c.InC; ic++ {
					for a := 0; a < c.K; a++ {
						for b := 0; b < c.K; b++ {
							c.GW[c.widx(o, ic, a, b)] += g * x.At3(ic, i+a, j+b)
							dx.Set3(ic, i+a, j+b, dx.At3(ic, i+a, j+b)+g*c.W[c.widx(o, ic, a, b)])
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []ParamGrad {
	return []ParamGrad{{W: c.W, G: c.GW}, {W: c.B, G: c.GB}}
}

// --- ReLU ---------------------------------------------------------------

// ReLU is the elementwise rectifier.
type ReLU struct{ mask []bool }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := x.Clone()
	if len(r.mask) != len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []ParamGrad { return nil }

// --- MaxPool2 -----------------------------------------------------------

// MaxPool2 is a 2×2 stride-2 max pool over (C,H,W); odd trailing
// rows/columns are dropped.
type MaxPool2 struct {
	inShape []int
	argmax  []int
}

// Forward implements Layer.
func (p *MaxPool2) Forward(x *Tensor) *Tensor {
	ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := NewTensor(ch, oh, ow)
	if len(p.argmax) != out.Len() {
		p.argmax = make([]int, out.Len())
	}
	oi := 0
	for c := 0; c < ch; c++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				best := math.Inf(-1)
				bestIdx := 0
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						ii, jj := 2*i+a, 2*j+b
						v := x.At3(c, ii, jj)
						if v > best {
							best = v
							bestIdx = (c*h+ii)*w + jj
						}
					}
				}
				out.Data[oi] = best
				p.argmax[oi] = bestIdx
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(p.inShape...)
	for oi, g := range grad.Data {
		dx.Data[p.argmax[oi]] += g
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2) Params() []ParamGrad { return nil }

// --- Flatten ------------------------------------------------------------

// Flatten reshapes any tensor to rank 1.
type Flatten struct{ inShape []int }

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	out := x.Clone()
	out.Shape = []int{len(out.Data)}
	return out
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	out := grad.Clone()
	out.Shape = append([]int(nil), f.inShape...)
	return out
}

// Params implements Layer.
func (f *Flatten) Params() []ParamGrad { return nil }

// --- Dense --------------------------------------------------------------

// Dense is a fully connected layer over rank-1 tensors.
type Dense struct {
	In, Out int
	W       []float64 // [out][in]
	B       []float64
	GW, GB  []float64

	x *Tensor
}

// NewDense builds a dense layer with He initialization from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
	}
	std := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("ml: dense input %d, want %d", x.Len(), d.In))
	}
	d.x = x
	out := NewTensor(d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			sum += row[i] * v
		}
		out.Data[o] = sum
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.GB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GW[o*d.In : (o+1)*d.In]
		for i, v := range d.x.Data {
			grow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []ParamGrad {
	return []ParamGrad{{W: d.W, G: d.GW}, {W: d.B, G: d.GB}}
}

// Sigmoid maps a logit to (0,1).
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
