// Package grid provides the regular latitude–longitude grid machinery
// the workflow's post-processing needs: coordinate mapping, bilinear
// regridding, tiling into non-overlapping patches and feature scaling
// (the paper's §5.4 pre-processing for the ML-based TC localization:
// "regridding the CMCC-CM3 file, tiling of data into non-overlapping
// patches, feature scaling, etc.").
package grid

import (
	"fmt"
	"math"
)

// Grid describes a regular global lat/lon grid. Latitudes run from
// -90+Δ/2 to 90-Δ/2 (cell centers), longitudes from 0 to 360-Δ.
type Grid struct {
	NLat int
	NLon int
}

// CMCCCM3 is the paper's native resolution: 768 latitudes × 1152
// longitudes (≈ ¼ degree).
var CMCCCM3 = Grid{NLat: 768, NLon: 1152}

// Reduced is the default test-scale grid.
var Reduced = Grid{NLat: 48, NLon: 96}

// Size returns the number of cells.
func (g Grid) Size() int { return g.NLat * g.NLon }

// LatStep returns the latitude spacing in degrees.
func (g Grid) LatStep() float64 { return 180 / float64(g.NLat) }

// LonStep returns the longitude spacing in degrees.
func (g Grid) LonStep() float64 { return 360 / float64(g.NLon) }

// Lat returns the center latitude of row i (south to north).
func (g Grid) Lat(i int) float64 { return -90 + (float64(i)+0.5)*g.LatStep() }

// Lon returns the center longitude of column j in [0,360).
func (g Grid) Lon(j int) float64 { return (float64(j) + 0.5) * g.LonStep() }

// Index maps (row, col) to the flat row-major offset.
func (g Grid) Index(i, j int) int { return i*g.NLon + j }

// RowCol maps a flat offset back to (row, col).
func (g Grid) RowCol(idx int) (int, int) { return idx / g.NLon, idx % g.NLon }

// CellOf returns the (row, col) containing the given coordinates.
// Longitude is normalized into [0,360); latitude is clamped.
func (g Grid) CellOf(lat, lon float64) (int, int) {
	lon = math.Mod(lon, 360)
	if lon < 0 {
		lon += 360
	}
	i := int((lat + 90) / g.LatStep())
	if i < 0 {
		i = 0
	}
	if i >= g.NLat {
		i = g.NLat - 1
	}
	j := int(lon/g.LonStep()) % g.NLon
	return i, j
}

// Field is a 2-D scalar field on a grid, row-major.
type Field struct {
	Grid Grid
	Data []float32
}

// NewField allocates a zero field.
func NewField(g Grid) *Field {
	return &Field{Grid: g, Data: make([]float32, g.Size())}
}

// At reads the value at (row, col); columns wrap around the globe and
// rows are clamped at the poles.
func (f *Field) At(i, j int) float32 {
	if i < 0 {
		i = 0
	}
	if i >= f.Grid.NLat {
		i = f.Grid.NLat - 1
	}
	j = ((j % f.Grid.NLon) + f.Grid.NLon) % f.Grid.NLon
	return f.Data[f.Grid.Index(i, j)]
}

// Set writes the value at (row, col) with the same wrapping rules.
func (f *Field) Set(i, j int, v float32) {
	if i < 0 {
		i = 0
	}
	if i >= f.Grid.NLat {
		i = f.Grid.NLat - 1
	}
	j = ((j % f.Grid.NLon) + f.Grid.NLon) % f.Grid.NLon
	f.Data[f.Grid.Index(i, j)] = v
}

// Regrid resamples the field onto dst using bilinear interpolation with
// longitudinal wraparound.
func (f *Field) Regrid(dst Grid) *Field {
	out := NewField(dst)
	src := f.Grid
	for i := 0; i < dst.NLat; i++ {
		// fractional source row for this destination latitude
		si := (dst.Lat(i)+90)/src.LatStep() - 0.5
		i0 := int(math.Floor(si))
		di := si - float64(i0)
		for j := 0; j < dst.NLon; j++ {
			sj := dst.Lon(j)/src.LonStep() - 0.5
			j0 := int(math.Floor(sj))
			dj := sj - float64(j0)
			v00 := float64(f.At(i0, j0))
			v01 := float64(f.At(i0, j0+1))
			v10 := float64(f.At(i0+1, j0))
			v11 := float64(f.At(i0+1, j0+1))
			v := v00*(1-di)*(1-dj) + v01*(1-di)*dj + v10*di*(1-dj) + v11*di*dj
			out.Data[dst.Index(i, j)] = float32(v)
		}
	}
	return out
}

// Stats holds summary statistics of a field.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Statistics computes min/max/mean/std of the field.
func (f *Field) Statistics() Stats {
	if len(f.Data) == 0 {
		return Stats{}
	}
	mn, mx := float64(f.Data[0]), float64(f.Data[0])
	var sum float64
	for _, v := range f.Data {
		fv := float64(v)
		if fv < mn {
			mn = fv
		}
		if fv > mx {
			mx = fv
		}
		sum += fv
	}
	mean := sum / float64(len(f.Data))
	var ss float64
	for _, v := range f.Data {
		d := float64(v) - mean
		ss += d * d
	}
	return Stats{Min: mn, Max: mx, Mean: mean, Std: math.Sqrt(ss / float64(len(f.Data)))}
}

// MinMaxScale rescales values into [0,1] in place and returns the
// original (min, max). A constant field maps to all zeros.
func (f *Field) MinMaxScale() (min, max float64) {
	s := f.Statistics()
	min, max = s.Min, s.Max
	span := max - min
	if span == 0 {
		for i := range f.Data {
			f.Data[i] = 0
		}
		return min, max
	}
	for i := range f.Data {
		f.Data[i] = float32((float64(f.Data[i]) - min) / span)
	}
	return min, max
}

// Standardize rescales to zero mean, unit variance in place, returning
// the original (mean, std). A constant field maps to all zeros.
func (f *Field) Standardize() (mean, std float64) {
	s := f.Statistics()
	mean, std = s.Mean, s.Std
	if std == 0 {
		for i := range f.Data {
			f.Data[i] = 0
		}
		return mean, std
	}
	for i := range f.Data {
		f.Data[i] = float32((float64(f.Data[i]) - mean) / std)
	}
	return mean, std
}

// Patch is one non-overlapping tile of a field.
type Patch struct {
	// Row0, Col0 are the top-left grid coordinates of the tile.
	Row0, Col0 int
	// H, W are the tile dimensions.
	H, W int
	// Data is the row-major tile content.
	Data []float32
}

// Index maps tile-local (r, c) to the flat offset in Data.
func (p *Patch) Index(r, c int) int { return r*p.W + c }

// Tile cuts the field into non-overlapping h×w patches, row-major over
// tiles. Edge tiles are dropped when the grid does not divide evenly,
// matching the "non-overlapping patches" preprocessing of §5.4.
func (f *Field) Tile(h, w int) ([]Patch, error) {
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("grid: invalid patch size %dx%d", h, w)
	}
	if h > f.Grid.NLat || w > f.Grid.NLon {
		return nil, fmt.Errorf("grid: patch %dx%d larger than grid %dx%d", h, w, f.Grid.NLat, f.Grid.NLon)
	}
	var out []Patch
	for i := 0; i+h <= f.Grid.NLat; i += h {
		for j := 0; j+w <= f.Grid.NLon; j += w {
			p := Patch{Row0: i, Col0: j, H: h, W: w, Data: make([]float32, h*w)}
			for r := 0; r < h; r++ {
				copy(p.Data[r*w:(r+1)*w], f.Data[f.Grid.Index(i+r, j):f.Grid.Index(i+r, j)+w])
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Haversine returns the great-circle distance in kilometers between two
// (lat, lon) points in degrees.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}
