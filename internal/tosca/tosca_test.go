package tosca

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClimateTopologyValid(t *testing.T) {
	top := ClimateTopology("zeus")
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.Node("extremes_workflow") == nil {
		t.Fatal("workflow node missing")
	}
	if n := top.NodesOfType(TypeSoftware); len(n) != 2 {
		t.Fatalf("software nodes = %d", len(n))
	}
}

func TestDeployOrderRespectsRelationships(t *testing.T) {
	top := ClimateTopology("zeus")
	order, err := top.DeployOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["hpc_cluster"] != 0 {
		t.Fatalf("cluster not first: %v", order)
	}
	for _, dep := range []string{"esm_model", "datacube_engine", "ml_runtime", "climatology_baseline"} {
		if pos[dep] >= pos["extremes_workflow"] {
			t.Fatalf("%s after workflow: %v", dep, order)
		}
	}
	undo, err := top.UndeployOrder()
	if err != nil {
		t.Fatal(err)
	}
	if undo[len(undo)-1] != "hpc_cluster" {
		t.Fatalf("undeploy must end with cluster: %v", undo)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := map[string]*Topology{
		"empty name": {Nodes: []Node{{Name: "a"}}},
		"no nodes":   {Name: "x"},
		"dup nodes":  {Name: "x", Nodes: []Node{{Name: "a"}, {Name: "a"}}},
		"anon node":  {Name: "x", Nodes: []Node{{Name: ""}}},
		"bad host":   {Name: "x", Nodes: []Node{{Name: "a", HostedOn: "ghost"}}},
		"bad dep":    {Name: "x", Nodes: []Node{{Name: "a", DependsOn: []string{"ghost"}}}},
		"cycle": {Name: "x", Nodes: []Node{
			{Name: "a", DependsOn: []string{"b"}},
			{Name: "b", DependsOn: []string{"a"}},
		}},
		"self cycle": {Name: "x", Nodes: []Node{{Name: "a", HostedOn: "a"}}},
	}
	for label, top := range cases {
		if err := top.Validate(); err == nil {
			t.Errorf("%s: validated", label)
		}
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	top := ClimateTopology("zeus")
	data, err := top.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != top.Name || len(got.Nodes) != len(top.Nodes) {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if got.Node("ml_runtime").Properties["image"] != "climate-ml" {
		t.Fatal("properties lost")
	}
	if _, err := Parse([]byte("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","nodes":[{"name":"a","hosted_on":"ghost"}]}`)); err == nil {
		t.Fatal("invalid topology accepted by Parse")
	}
}

func TestLoadFile(t *testing.T) {
	top := ClimateTopology("zeus")
	data, _ := top.Marshal()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "climate-extremes" {
		t.Fatalf("name = %q", got.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDeployOrderDeterministic(t *testing.T) {
	top := ClimateTopology("zeus")
	a, _ := top.DeployOrder()
	b, _ := top.DeployOrder()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}
