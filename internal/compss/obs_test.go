package compss

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSpanNestingUnderRetries is the satellite-5 tracing contract: a
// task whose first attempt times out must produce one task span with
// one child span per attempt, the timed-out attempt closed with an
// error status, and the final span closed clean.
func TestSpanNestingUnderRetries(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	rt := NewRuntime(Config{
		Workers:     2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Metrics:     reg,
		Tracer:      tr,
	})
	t.Cleanup(func() { _ = rt.Shutdown() })

	var attempts int64
	slow := rt.MustRegister(TaskDef{
		Name:    "sometimes-slow",
		Outputs: 1,
		Retries: 2,
		Timeout: 20 * time.Millisecond,
		Fn: func(args []any) ([]any, error) {
			if atomic.AddInt64(&attempts, 1) == 1 {
				time.Sleep(200 * time.Millisecond) // blow the attempt deadline
			}
			return []any{"ok"}, nil
		},
	})
	f, err := rt.InvokeOne(slow)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.Get(); err != nil || v != "ok" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	var task obs.SpanData
	var atts []obs.SpanData
	for _, s := range spans {
		switch s.Name {
		case "sometimes-slow":
			task = s
		case "attempt":
			atts = append(atts, s)
		}
	}
	if task.ID == 0 {
		t.Fatalf("no task span recorded; spans = %+v", spans)
	}
	if task.Err != "" {
		t.Errorf("task span ended with error %q despite eventual success", task.Err)
	}
	if len(atts) != 2 {
		t.Fatalf("want 2 attempt spans, got %d", len(atts))
	}
	for _, a := range atts {
		if a.Parent != task.ID || a.Root != task.ID {
			t.Errorf("attempt span %d not nested under task span %d: parent=%d root=%d",
				a.ID, task.ID, a.Parent, a.Root)
		}
	}
	// Attempts are published in completion order: the timed-out first
	// attempt carries the timeout error, the retry is clean.
	var timedOut, clean int
	for _, a := range atts {
		switch {
		case strings.Contains(a.Err, "timed out"):
			timedOut++
			if got := a.Attr("attempt"); got != "0" {
				t.Errorf("timed-out span is attempt %q, want 0", got)
			}
		case a.Err == "":
			clean++
		default:
			t.Errorf("attempt span has unexpected error %q", a.Err)
		}
	}
	if timedOut != 1 || clean != 1 {
		t.Errorf("attempt errors: %d timed out / %d clean, want 1/1", timedOut, clean)
	}

	// Counters must agree with the trace.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"compss_tasks_timed_out_total 1",
		"compss_tasks_retried_total 1",
		"compss_tasks_succeeded_total 1",
		"compss_task_attempt_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}
