package main

import (
	"fmt"
	"log"
	"path/filepath"
	"time"

	"repro/internal/datacube"
	"repro/internal/ensemble"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/multisite"
)

// ens: initial-condition ensemble — members run concurrently on the
// task runtime; the datacube engine aggregates their heat-wave-number
// cubes into mean/spread/agreement products (§3's ensemble workloads).
func ens() {
	fmt.Println("=== ENS: initial-condition ensemble (5 members, 1 year each) ===")
	engine := datacube.NewEngine(datacube.Config{Servers: 4})
	defer engine.Close()
	t0 := time.Now()
	res, err := ensemble.Run(engine, ensemble.Config{
		Base: esm.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       1,
			DaysPerYear: 15,
			Seed:        300,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 2, ColdSpellsPerYear: 0, CyclonesPerYear: 0,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 8,
			},
		},
		Members: 5,
		Workers: 5,
		Dir:     tmpDir("ens-"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Stats.Delete()
	fmt.Printf("ran %d members in %v\n", len(res.Members), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%-8s %10s %14s\n", "member", "seed", "hw mean/cell")
	for _, m := range res.Members {
		fmt.Printf("%-8d %10d %14.4f\n", m.Member, m.Seed, m.MeanNumber)
	}
	mean := mustScalar(res.Stats.Mean, "avg")
	spread := mustScalar(res.Stats.Std, "avg")
	agree := mustScalar(res.Stats.Agreement, "max")
	fmt.Printf("ensemble: mean=%.4f spread=%.4f max-agreement=%.2f\n", mean, spread, agree)
	fmt.Println("shape: members differ (internal variability) while the forced event")
	fmt.Println("statistics agree — the signal/noise separation ensembles exist for.")
	fmt.Println()
}

func mustScalar(c *datacube.Cube, op string) float64 {
	agg, err := c.AggregateRows(op)
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Delete()
	red, err := agg.Reduce(op)
	if err != nil {
		log.Fatal(err)
	}
	defer red.Delete()
	v, err := red.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// dist: the distributed deployment of §7's future work — ESM on the
// HPC site, analytics on the cloud site, ML/tracking on the GPU site,
// with the Data Logistics Service moving each year's files. Results
// must match the single-site run; the cost is the transfer volume.
func dist() {
	fmt.Println("=== DIST: multi-site distributed execution (HPC → cloud/GPU via DLS) ===")
	mk := func() multisite.Config {
		return multisite.Config{Model: esm.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       2,
			DaysPerYear: 15,
			Seed:        12,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 1, ColdSpellsPerYear: 0, CyclonesPerYear: 1,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
			},
		}}
	}
	fed := multisite.NewFederation()
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	defer engine.Close()
	base := tmpDir("dist-")
	if _, err := fed.AddSite("zeus", multisite.KindHPC, filepath.Join(base, "hpc"), nil); err != nil {
		log.Fatal(err)
	}
	if _, err := fed.AddSite("cloud", multisite.KindCloud, filepath.Join(base, "cloud"), engine); err != nil {
		log.Fatal(err)
	}
	if _, err := fed.AddSite("gpu", multisite.KindGPU, filepath.Join(base, "gpu"), nil); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := multisite.RunDistributed(fed, mk())
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	fmt.Printf("%-6s %14s %10s\n", "year", "hw mean/cell", "tracks")
	for _, yr := range res.Years {
		fmt.Printf("%-6d %14.4f %10d\n", yr.Year, yr.HWNumberMean, yr.TrackerTracks)
	}
	fmt.Printf("inter-site movement: %d transfers, %.1f MB in %v\n",
		res.Transfers.Transfers, float64(res.Transfers.BytesMoved)/1e6, dt.Round(time.Millisecond))
	fmt.Println("shape: distribution changes no result; its cost is the measured")
	fmt.Println("transfer volume, which the DLS pipelines make explicit.")
	fmt.Println()
}
