// Command nctool inspects GNC1 (NetCDF-like) files: header dump,
// per-variable statistics, and quick-look ASCII rendering of 2-D
// slices — the ncdump/ncview analogue for this repository's format.
//
// Usage:
//
//	nctool header file.nc
//	nctool stats file.nc [-var TREFHT]
//	nctool render file.nc -var TREFHT [-step 0] [-cols 72]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/grid"
	"repro/internal/ncdf"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	path := os.Args[2]
	rest := os.Args[3:]
	switch cmd {
	case "header":
		header(path)
	case "stats":
		stats(path, rest)
	case "render":
		render(path, rest)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nctool {header|stats|render} <file.nc> [flags]")
	os.Exit(2)
}

func header(path string) {
	ds, err := ncdf.ReadHeaderFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file %s (GNC1)\n", path)
	fmt.Println("dimensions:")
	for _, d := range ds.Dims {
		fmt.Printf("  %-12s = %d\n", d.Name, d.Len)
	}
	if len(ds.Attrs) > 0 {
		fmt.Println("global attributes:")
		printAttrs(ds.Attrs, "  ")
	}
	fmt.Println("variables:")
	for _, v := range ds.Vars {
		fmt.Printf("  float %s%v\n", v.Name, v.Dims)
		printAttrs(v.Attrs, "    ")
	}
}

func printAttrs(attrs map[string]ncdf.AttrValue, indent string) {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := attrs[k]
		switch a.Kind {
		case 's':
			fmt.Printf("%s%s = %q\n", indent, k, a.S)
		case 'i':
			fmt.Printf("%s%s = %d\n", indent, k, a.I)
		case 'f':
			fmt.Printf("%s%s = %g\n", indent, k, a.F)
		}
	}
}

func stats(path string, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	varName := fs.String("var", "", "limit to one variable")
	fs.Parse(args)
	ds, err := ncdf.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "variable", "min", "max", "mean", "std")
	for _, v := range ds.Vars {
		if *varName != "" && v.Name != *varName {
			continue
		}
		f := grid.Field{Grid: grid.Grid{NLat: 1, NLon: len(v.Data)}, Data: v.Data}
		s := f.Statistics()
		fmt.Printf("%-12s %12.4g %12.4g %12.4g %12.4g\n", v.Name, s.Min, s.Max, s.Mean, s.Std)
	}
}

func render(path string, args []string) {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	varName := fs.String("var", "", "variable to render (required)")
	step := fs.Int("step", 0, "leading-dimension slice (e.g. time step)")
	cols := fs.Int("cols", 72, "terminal columns")
	pngPath := fs.String("png", "", "also write a PNG to this path")
	fs.Parse(args)
	if *varName == "" {
		log.Fatal("render: -var required")
	}
	ds, v, err := ncdf.ReadVariableFile(path, *varName)
	if err != nil {
		log.Fatal(err)
	}
	shape, err := ds.Shape(v)
	if err != nil {
		log.Fatal(err)
	}
	var nlat, nlon, offset int
	switch len(shape) {
	case 2:
		nlat, nlon = shape[0], shape[1]
	case 3:
		if *step < 0 || *step >= shape[0] {
			log.Fatalf("render: step %d out of range [0,%d)", *step, shape[0])
		}
		nlat, nlon = shape[1], shape[2]
		offset = *step * nlat * nlon
	default:
		log.Fatalf("render: variable %s has rank %d, want 2 or 3", *varName, len(shape))
	}
	f := grid.NewField(grid.Grid{NLat: nlat, NLon: nlon})
	copy(f.Data, v.Data[offset:offset+nlat*nlon])
	fmt.Printf("%s[%s] step %d (%dx%d):\n", path, *varName, *step, nlat, nlon)
	fmt.Println(viz.ASCIIMap(f, *cols))
	if *pngPath != "" {
		if err := viz.WritePNG(*pngPath, f, 0, 0, viz.Heat, 4); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pngPath)
	}
}
