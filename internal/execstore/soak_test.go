package execstore

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// soakHandler is a deterministic function of the task payload: it
// hashes the payload, "works" for a payload-derived duration (honoring
// ctx so killed replicas stop promptly), and returns a canonical JSON
// output. Determinism is what upgrades exactly-once COMPLETION into
// byte-identical OUTPUTS even when a crash forces re-execution.
func soakHandler(execCount *sync.Map) Handler {
	return func(ctx context.Context, t TaskView) (json.RawMessage, error) {
		if execCount != nil {
			c, _ := execCount.LoadOrStore(t.ID, new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
		}
		h := fnv.New64a()
		h.Write([]byte(t.ID))
		h.Write(t.Payload)
		sum := h.Sum64()
		work := time.Duration(sum%20+5) * time.Millisecond
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(work):
		}
		out, _ := json.Marshal(map[string]any{"id": t.ID, "digest": fmt.Sprintf("%016x", sum)})
		return out, nil
	}
}

// runCleanSoak executes the task set on one healthy replica and returns
// the reference outputs.
func runCleanSoak(t *testing.T, tasks []Task) map[string]string {
	t.Helper()
	s := openStore(t, Config{MaxPending: 1 << 14, LeaseTTL: 500 * time.Millisecond})
	r, err := NewReplica(ReplicaConfig{ID: "clean-1", Store: s, Workers: 8, Handler: soakHandler(nil)})
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer r.Kill()
	for _, task := range tasks {
		mustSubmit(t, s, task)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("clean run did not finish: %v", err)
	}
	return collectOutputs(t, s, tasks)
}

func collectOutputs(t *testing.T, s *Store, tasks []Task) map[string]string {
	t.Helper()
	outs := make(map[string]string, len(tasks))
	for _, task := range tasks {
		v, ok := s.Get(task.ID)
		if !ok {
			t.Fatalf("task %s lost", task.ID)
		}
		if v.State != StateDone {
			t.Fatalf("task %s ended %s (err %q), want DONE", task.ID, v.State, v.Err)
		}
		outs[task.ID] = string(v.Output)
	}
	return outs
}

// TestReplicaSoakKillRestart is the chaos soak from the issue: N
// replicas drain a multi-tenant backlog while a chaos loop repeatedly
// kills one mid-run and starts a replacement. Every task must complete
// exactly once with output byte-identical to a clean (no-chaos) run.
func TestReplicaSoakKillRestart(t *testing.T) {
	nTasks, minKills := 400, 3
	if testing.Short() {
		nTasks, minKills = 150, 1 // smoke: one kill still proves reclaim+fence
	}
	const nTenants = 10
	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = Task{
			ID:      fmt.Sprintf("soak-%03d", i),
			Tenant:  fmt.Sprintf("tenant-%d", i%nTenants),
			Kind:    []string{"sim", "post", "ml"}[i%3],
			Payload: json.RawMessage(fmt.Sprintf(`{"seed":%d}`, i*7919)),
		}
	}
	reference := runCleanSoak(t, tasks)

	// Chaotic run: 3 replicas, short leases so reclaim is fast, and a
	// killer loop cycling through them.
	s := openStore(t, Config{
		MaxPending: 1 << 14,
		LeaseTTL:   250 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	var execCount sync.Map
	newRep := func(id string) *Replica {
		r, err := NewReplica(ReplicaConfig{
			ID: id, Store: s, Workers: 4, Handler: soakHandler(&execCount),
		})
		if err != nil {
			t.Fatalf("NewReplica(%s): %v", id, err)
		}
		return r
	}
	var mu sync.Mutex
	reps := []*Replica{newRep("rep-0"), newRep("rep-1"), newRep("rep-2")}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range reps {
			r.Kill()
		}
	})

	stopChaos := make(chan struct{})
	chaosDone := make(chan int)
	go func() {
		kills := 0
		gen := 3
		for {
			select {
			case <-stopChaos:
				chaosDone <- kills
				return
			case <-time.After(60 * time.Millisecond):
			}
			mu.Lock()
			victim := reps[kills%len(reps)]
			victim.Kill() // crash: held leases are silently abandoned
			kills++
			reps[(kills-1)%len(reps)] = newRep(fmt.Sprintf("rep-%d", gen))
			gen++
			mu.Unlock()
		}
	}()

	// Concurrent submitting clients, retrying on shed like real ones.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < nTasks; i += 4 {
				for {
					_, err := s.Submit(tasks[i])
					if err == nil {
						break
					}
					se, ok := AsShed(err)
					if !ok {
						t.Errorf("Submit(%s): %v", tasks[i].ID, err)
						return
					}
					time.Sleep(se.RetryAfter)
				}
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("chaotic run did not converge: %v (stats %+v)", err, s.Stats())
	}
	close(stopChaos)
	kills := <-chaosDone
	if kills < minKills {
		t.Fatalf("chaos loop only killed %d replicas; soak too short to mean anything", kills)
	}

	// Zero lost, zero double-completed, outputs byte-identical.
	got := collectOutputs(t, s, tasks)
	for id, want := range reference {
		if got[id] != want {
			t.Fatalf("task %s output diverged:\n  clean: %s\n  chaos: %s", id, want, got[id])
		}
	}
	st := s.Stats()
	if st.Completed != uint64(nTasks) {
		t.Fatalf("Completed = %d, want exactly %d", st.Completed, nTasks)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("failed=%d canceled=%d, want 0/0", st.Failed, st.Canceled)
	}

	// Re-executions are allowed (that's what reclaim is for) but every
	// surplus execution must correspond to a reclaimed or fenced
	// attempt, and there must be some if kills landed mid-run.
	var reexecs int64
	execCount.Range(func(_, v any) bool {
		if n := v.(*atomic.Int64).Load(); n > 1 {
			reexecs += n - 1
		}
		return true
	})
	t.Logf("soak: %d kills, %d reclaims, %d fenced, %d re-executions, epoch %d",
		kills, st.Reclaimed, st.Fenced, reexecs, st.Epoch)
	if reexecs > 0 && st.Reclaimed == 0 && st.Fenced == 0 {
		t.Fatal("re-executions happened without any reclaim/fence — exactly-once bookkeeping is broken")
	}
}

// TestReplicaDrainHandsBackWork verifies graceful shutdown: a draining
// replica finishes its running tasks and the rest of the backlog stays
// available to a peer.
func TestReplicaDrainHandsBackWork(t *testing.T) {
	s := openStore(t, Config{MaxPending: 1 << 10, LeaseTTL: time.Second})
	var execs atomic.Int64
	handler := func(ctx context.Context, tv TaskView) (json.RawMessage, error) {
		execs.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		return json.RawMessage(`"ok"`), nil
	}
	r1, err := NewReplica(ReplicaConfig{ID: "r1", Store: s, Workers: 2, Handler: handler})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("d-%d", i), Tenant: "x"})
	}
	time.Sleep(10 * time.Millisecond) // let r1 start chewing
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := r1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	r2, err := NewReplica(ReplicaConfig{ID: "r2", Store: s, Workers: 4, Handler: handler})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Kill()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := s.WaitIdle(wctx); err != nil {
		t.Fatalf("backlog never drained after handoff: %v (stats %+v)", err, s.Stats())
	}
	if st := s.Stats(); st.Completed != 50 {
		t.Fatalf("Completed = %d, want 50", st.Completed)
	}
}
